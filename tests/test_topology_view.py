"""Tests for :mod:`repro.topology.view`.

The load-bearing property: after ANY interleaving of edge insertions and
removals, every memoized query of a :class:`TopologyView` equals a fresh
uncached computation on the underlying graph.  Hypothesis drives ≥ 200
generated interleavings (the acceptance bar for the cache refactor).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_distances
from repro.topology.view import INVALIDATION_RADIUS, TopologyView, as_view

from tests.strategies import connected_graphs


def line_graph(n: int) -> Graph:
    """A path 0-1-...-(n-1): distances are easy to reason about."""
    return Graph(edges=[(i, i + 1) for i in range(n - 1)])


def assert_view_fresh(view: TopologyView, graph: Graph) -> None:
    """Every cached query must equal its from-scratch counterpart."""
    nodes = graph.nodes()
    for v in nodes:
        assert view.neighbours(v) == graph.neighbours(v)
        assert view.sorted_neighbours(v) == tuple(sorted(graph.neighbours_view(v)))
        assert view.closed_neighbourhood(v) == frozenset(graph.closed_neighbourhood(v))
        dist3 = bfs_distances(graph, v, max_depth=3)
        assert dict(view.distances_within(v, 3)) == dist3
        dist2 = bfs_distances(graph, v, max_depth=2)
        assert view.two_hop(v) == frozenset(dist2)
        assert view.two_hop(v, closed=False) == frozenset(
            x for x, d in dist2.items() if d == 2
        )
        rings = view.frontiers(v, 3)
        assert len(rings) == 4
        for k, ring in enumerate(rings):
            assert ring == frozenset(x for x, d in dist3.items() if d == k)
    # A deterministic sample of pairs exercises the pair cache.
    for u in nodes[::2]:
        for v in nodes[1::3]:
            if u != v:
                expect = frozenset(
                    graph.neighbours_view(u) & graph.neighbours_view(v)
                )
                assert view.common_neighbours(u, v) == expect


class TestQueries:
    def test_matches_graph_on_static_topology(self):
        graph = line_graph(8)
        graph.add_edge(0, 4)
        view = TopologyView(graph)
        assert_view_fresh(view, graph)

    def test_cache_hits_accumulate(self):
        view = TopologyView(line_graph(5))
        view.neighbours(2)
        misses = view.misses
        view.neighbours(2)
        view.neighbours(2)
        assert view.misses == misses
        assert view.hits >= 2

    def test_depth_bound_enforced(self):
        view = TopologyView(line_graph(5))
        with pytest.raises(ValueError):
            view.distances_within(0, INVALIDATION_RADIUS + 1)
        with pytest.raises(ValueError):
            view.distances_within(0, -1)

    def test_unknown_node_raises(self):
        view = TopologyView(line_graph(3))
        with pytest.raises(NodeNotFoundError):
            view.neighbours(99)
        with pytest.raises(NodeNotFoundError):
            view.distances_within(99, 2)

    def test_filtered_distances(self):
        view = TopologyView(line_graph(6))
        assert view.filtered_distances(0, {2, 3, 5}) == {2: 2, 3: 3}

    def test_ball_contains_seeds_and_radius(self):
        view = TopologyView(line_graph(10))
        ball = view.ball([4])
        assert ball == frozenset({1, 2, 3, 4, 5, 6, 7})
        assert view.ball([0], radius=1) == frozenset({0, 1})
        # A vanished node still contributes itself.
        assert 99 in view.ball([99])


class TestInvalidation:
    def test_generation_bumps_per_event(self):
        view = TopologyView(line_graph(6))
        g0 = view.generation
        view.remove_edge(0, 1)
        view.add_edge(0, 1)
        assert view.generation == g0 + 2

    def test_epoch_moves_only_inside_the_ball(self):
        view = TopologyView(line_graph(12))
        for v in view.graph.nodes():
            view.distances_within(v, 3)
        view.remove_edge(0, 1)
        # Within 3 hops of the endpoints: dirtied.
        for v in (0, 1, 2, 3, 4):
            assert view.epoch(v) == view.generation
        # Far end of the line: untouched.
        for v in (8, 9, 10, 11):
            assert view.epoch(v) == 0

    def test_far_cache_entries_survive(self):
        view = TopologyView(line_graph(12))
        for v in view.graph.nodes():
            view.distances_within(v, 3)
        misses = view.misses
        view.remove_edge(0, 1)
        view.distances_within(11, 3)  # outside the ball: still cached
        assert view.misses == misses
        view.distances_within(2, 3)  # inside the ball: recomputed
        assert view.misses == misses + 1

    def test_notify_edge_after_external_mutation(self):
        graph = line_graph(6)
        view = TopologyView(graph)
        assert_view_fresh(view, graph)
        graph.add_edge(0, 5)
        view.notify_edge(0, 5)
        assert_view_fresh(view, graph)

    def test_invalidate_all(self):
        graph = line_graph(6)
        view = TopologyView(graph)
        assert_view_fresh(view, graph)
        graph.add_edge(0, 3)
        graph.remove_edge(3, 4)
        view.invalidate_all()
        assert_view_fresh(view, graph)

    def test_mutation_through_view_updates_graph(self):
        graph = line_graph(4)
        view = TopologyView(graph)
        view.add_edge(0, 3)
        assert graph.has_edge(0, 3)
        view.remove_edge(0, 3)
        assert not graph.has_edge(0, 3)


class TestAdapter:
    def test_as_view_wraps_graph(self):
        graph = line_graph(4)
        view = as_view(graph)
        assert view.graph is graph

    def test_as_view_passthrough(self):
        view = TopologyView(line_graph(4))
        assert as_view(view) is view

    def test_as_view_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_view({0: [1]})


class TestEquivalenceProperty:
    @settings(max_examples=200, deadline=None)
    @given(graph=connected_graphs(min_nodes=3, max_nodes=14), data=st.data())
    def test_any_event_interleaving_keeps_view_fresh(self, graph, data):
        """≥200 interleavings of insert/remove leave every query exact."""
        view = TopologyView(graph)
        assert_view_fresh(view, graph)  # warm every cache first
        n_events = data.draw(st.integers(1, 8), label="n_events")
        nodes = graph.nodes()
        for i in range(n_events):
            edges = graph.edges()
            non_edges = [
                (u, v)
                for ui, u in enumerate(nodes)
                for v in nodes[ui + 1:]
                if not graph.has_edge(u, v)
            ]
            choices = []
            if edges:
                choices.append("remove")
            if non_edges:
                choices.append("add")
            op = data.draw(st.sampled_from(choices), label=f"op{i}")
            external = data.draw(st.booleans(), label=f"external{i}")
            if op == "remove":
                u, v = edges[data.draw(
                    st.integers(0, len(edges) - 1), label=f"edge{i}")]
                if external:
                    graph.remove_edge(u, v)
                    view.notify_edge(u, v)
                else:
                    view.remove_edge(u, v)
            else:
                u, v = non_edges[data.draw(
                    st.integers(0, len(non_edges) - 1), label=f"edge{i}")]
                if external:
                    graph.add_edge(u, v)
                    view.notify_edge(u, v)
                else:
                    view.add_edge(u, v)
            assert_view_fresh(view, graph)
