"""Tests for unit disk graph construction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.graph.build import unit_disk_graph


class TestBasics:
    def test_two_nodes_in_range(self):
        g = unit_disk_graph(np.array([[0.0, 0.0], [1.0, 0.0]]), 1.5)
        assert g.has_edge(0, 1)

    def test_strict_inequality(self):
        # Paper: neighbours iff distance is *less than* r.
        g = unit_disk_graph(np.array([[0.0, 0.0], [1.0, 0.0]]), 1.0)
        assert not g.has_edge(0, 1)

    def test_empty_and_single(self):
        assert unit_disk_graph(np.zeros((0, 2)), 1.0).num_nodes == 0
        assert unit_disk_graph(np.zeros((1, 2)), 1.0).num_nodes == 1

    def test_custom_ids(self):
        g = unit_disk_graph(
            np.array([[0.0, 0.0], [0.5, 0.0]]), 1.0, ids=[10, 20]
        )
        assert g.has_edge(10, 20)
        assert set(g.nodes()) == {10, 20}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(GeometryError):
            unit_disk_graph(np.zeros((2, 2)), 1.0, ids=[1, 1])

    def test_id_count_mismatch_rejected(self):
        with pytest.raises(GeometryError):
            unit_disk_graph(np.zeros((2, 2)), 1.0, ids=[1])

    @pytest.mark.parametrize("r", [0.0, -1.0, float("inf")])
    def test_bad_radius_rejected(self, r):
        with pytest.raises(GeometryError):
            unit_disk_graph(np.zeros((2, 2)), r)

    def test_unknown_method_rejected(self):
        with pytest.raises(GeometryError):
            unit_disk_graph(np.zeros((2, 2)), 1.0, method="magic")


class TestMethodEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), n=st.integers(2, 80),
           radius=st.floats(0.05, 0.6))
    def test_dense_equals_grid(self, seed, n, radius):
        pts = np.random.default_rng(seed).random((n, 2))
        dense = unit_disk_graph(pts, radius, method="dense")
        grid = unit_disk_graph(pts, radius, method="grid")
        assert dense == grid

    def test_auto_picks_something_valid(self):
        pts = np.random.default_rng(0).random((30, 2))
        auto = unit_disk_graph(pts, 0.3, method="auto")
        dense = unit_disk_graph(pts, 0.3, method="dense")
        assert auto == dense
