"""Service-core robustness: admission, deadlines, recovery — in process.

These tests drive :class:`ServeService` directly (no socket): durable
acceptance, watermark/limit shedding, deadline enforcement, cancel races,
restart recovery bit-identical to the serial oracle, and journal-disk
failure staying a *request* failure rather than a daemon crash.  The
subprocess SIGKILL versions of the same guarantees live in the slow
``tests/test_chaos_serve.py`` lane.
"""

import errno
import json
import threading
import time

import pytest
from repro.serve import protocol
from repro.serve.lifecycle import (
    ERROR_FILE,
    JOURNAL_FILE,
    MANIFEST_FILE,
    RESULT_FILE,
    write_json_atomic,
)
from repro.serve.protocol import ServeError
from repro.serve.recovery import load_manifest, max_seq, scan_incomplete
from repro.serve.service import ServeService
from repro.workload.serve_adapters import (
    ExperimentAdapter,
    RunContext,
    _ADAPTERS,
    get_adapter,
    register,
)

FAULT_PARAMS = {"losses": [0.0], "n": 10, "trials": 2, "seed": 5}


def oracle(experiment, params):
    """The serial one-shot answer every service path must reproduce."""
    adapter = get_adapter(experiment)
    result = adapter.run(adapter.validate(params),
                         RunContext(backend="serial", parallel=1))
    return json.loads(json.dumps(result, sort_keys=True))


def canonical(result):
    return json.dumps(result, sort_keys=True)


@pytest.fixture
def service(tmp_path):
    svc = ServeService(tmp_path / "state", backend="serial", workers=1)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture
def blocker():
    """A registered test experiment that blocks until released."""
    release = threading.Event()
    started = threading.Event()

    def run(params, ctx):
        started.set()
        release.wait(30.0)
        return {"blocked": True}

    register(ExperimentAdapter(name="block-test",
                               validate=lambda p: dict(p), run=run))
    try:
        yield type("B", (), {"release": release, "started": started})()
    finally:
        release.set()
        _ADAPTERS.pop("block-test", None)


def submit(service, experiment="faults", params=None, **kw):
    payload = {"op": "submit", "experiment": experiment,
               "params": FAULT_PARAMS if params is None else params}
    payload.update(kw)
    return service.submit(payload)


def wait_file(path, timeout=5.0):
    """The terminal file lands just after the in-memory transition."""
    deadline = time.monotonic() + timeout
    while not path.exists():
        assert time.monotonic() < deadline, f"{path} never appeared"
        time.sleep(0.01)
    return path


class TestHappyPath:
    def test_result_matches_serial_oracle(self, service):
        req = submit(service, "faults", FAULT_PARAMS)
        assert req.wait_terminal(60)
        assert req.state == "done"
        got = json.loads(json.dumps(req.result, sort_keys=True))
        assert got == oracle("faults", FAULT_PARAMS)

    def test_acceptance_is_durable_before_return(self, service):
        req = submit(service, id="keep-1")
        manifest = load_manifest(req.directory / MANIFEST_FILE)
        assert manifest is not None and manifest["id"] == "keep-1"
        assert req.wait_terminal(60)

    def test_terminal_file_written_atomically(self, service):
        req = submit(service, id="done-1")
        assert req.wait_terminal(60)
        on_disk = json.loads(
            wait_file(req.directory / RESULT_FILE).read_text())
        assert canonical(on_disk["result"]) == canonical(req.result)

    def test_progress_streams_fold_by_fold(self, service):
        req = submit(service)
        assert req.wait_terminal(60)
        progress = req.progress()
        assert progress  # at least one journal point streamed
        for point in progress.values():
            assert point["trials"] == FAULT_PARAMS["trials"]
            for est in point["estimates"].values():
                assert est["samples"] == FAULT_PARAMS["trials"]

    def test_supervision_events_land_on_the_request(self, service, tmp_path,
                                                    monkeypatch):
        # A clean run emits nothing; inject one transient failure via the
        # chaos adapter and the retry must show up in the request's
        # bounded event log (and the answer must still be the oracle's).
        monkeypatch.setenv("REPRO_SERVE_CHAOS", "1")
        markers = tmp_path / "markers"
        markers.mkdir()
        params = {"marker_dir": str(markers), "trials": 4, "seed": 11,
                  "raise_indices": [1]}
        req = submit(service, "chaos", params, id="chaos-ev")
        assert req.wait_terminal(60)
        assert req.state == "done"
        summary = req.event_summary()
        assert summary.get("chunk-failure", 0) >= 1
        assert summary.get("retry", 0) >= 1
        clean = dict(params, marker_dir=str(tmp_path / "clean"),
                     raise_indices=[])
        (tmp_path / "clean").mkdir()
        assert canonical(req.result) == canonical(oracle("chaos", clean))


class TestAdmission:
    def test_duplicate_active_id_rejected(self, service, blocker):
        submit(service, "block-test", {}, id="dup")
        assert blocker.started.wait(10)
        with pytest.raises(ServeError) as info:
            submit(service, "block-test", {}, id="dup")
        assert info.value.code == protocol.BAD_REQUEST
        assert not info.value.retryable

    def test_watermark_sheds_normal_but_not_urgent(self, tmp_path, blocker):
        svc = ServeService(tmp_path / "s", backend="serial",
                           queue_limit=4, watermark=2)
        svc.start()
        try:
            submit(svc, "block-test", {}, id="running")
            assert blocker.started.wait(10)
            submit(svc, "block-test", {}, id="q1")
            submit(svc, "block-test", {}, id="q2")
            # depth == watermark: normal traffic sheds, retryably
            with pytest.raises(ServeError) as info:
                submit(svc, "block-test", {}, id="q3")
            assert info.value.code == protocol.OVERLOADED
            assert info.value.retryable
            # urgent bypasses the watermark up to the hard limit
            submit(svc, "block-test", {}, id="u1", urgent=True)
            submit(svc, "block-test", {}, id="u2", urgent=True)
            with pytest.raises(ServeError) as info:
                submit(svc, "block-test", {}, id="u3", urgent=True)
            assert info.value.code == protocol.OVERLOADED
            assert svc.stats["shed"] == 2
            assert svc.health()["readyz"] is False
        finally:
            blocker.release.set()
            svc.stop()

    def test_shed_request_leaves_no_manifest(self, tmp_path, blocker):
        svc = ServeService(tmp_path / "s", backend="serial",
                           queue_limit=2, watermark=1)
        svc.start()
        try:
            submit(svc, "block-test", {}, id="running")
            assert blocker.started.wait(10)
            submit(svc, "block-test", {}, id="q1")
            with pytest.raises(ServeError):
                submit(svc, "block-test", {}, id="shed-me")
            assert not (svc.requests_dir / "shed-me" / MANIFEST_FILE).exists()
        finally:
            blocker.release.set()
            svc.stop()

    def test_draining_rejects_new_submits(self, service):
        service.drain(grace=5)
        with pytest.raises(ServeError) as info:
            submit(service, id="late")
        assert info.value.code == protocol.DRAINING
        assert info.value.retryable
        assert service.health()["readyz"] is False

    def test_reused_id_with_different_params_rejected(self, service):
        req = submit(service, id="re-1")
        assert req.wait_terminal(60)
        other = dict(FAULT_PARAMS, seed=99)
        with pytest.raises(ServeError) as info:
            submit(service, params=other, id="re-1")
        assert info.value.code == protocol.BAD_REQUEST

    def test_retry_of_terminal_id_reuses_journal_bit_identically(
            self, service):
        first = submit(service, id="re-2")
        assert first.wait_terminal(60)
        journal_bytes = (first.directory / JOURNAL_FILE).read_bytes()
        assert journal_bytes
        second = submit(service, id="re-2")
        assert second.wait_terminal(60)
        assert canonical(second.result) == canonical(first.result)
        # the journal was resumed, not rewritten: same folded prefix
        assert (second.directory / JOURNAL_FILE).read_bytes() == \
            journal_bytes


class TestDeadlineAndCancel:
    def test_wedged_request_fails_past_deadline(self, service, blocker):
        req = submit(service, "block-test", {}, id="wedge", deadline=0.3)
        assert req.wait_terminal(30)
        assert req.state == "failed"
        assert req.error["code"] == protocol.DEADLINE
        assert req.error["retryable"] is True
        on_disk = json.loads(
            wait_file(req.directory / ERROR_FILE).read_text())
        assert on_disk["error"]["code"] == protocol.DEADLINE

    def test_late_runner_cannot_overwrite_deadline_failure(
            self, service, blocker):
        req = submit(service, "block-test", {}, id="late-win", deadline=0.2)
        assert req.wait_terminal(30)
        blocker.release.set()  # runner now completes — and must lose
        time.sleep(0.3)
        assert req.state == "failed"
        assert req.error["code"] == protocol.DEADLINE
        assert not (req.directory / RESULT_FILE).exists()

    def test_cancel_queued_request(self, tmp_path, blocker):
        svc = ServeService(tmp_path / "s", backend="serial", queue_limit=8,
                           watermark=8)
        svc.start()
        try:
            submit(svc, "block-test", {}, id="running")
            assert blocker.started.wait(10)
            queued = submit(svc, "block-test", {}, id="queued")
            cancelled = svc.cancel("queued")
            assert cancelled.state == "cancelled"
            assert json.loads(
                (queued.directory / ERROR_FILE).read_text()
            )["error"]["code"] == protocol.CANCELLED
        finally:
            blocker.release.set()
            svc.stop()

    def test_cancel_running_request(self, service, blocker):
        req = submit(service, "block-test", {}, id="run-cancel")
        assert blocker.started.wait(10)
        service.cancel("run-cancel")
        assert req.state == "cancelled"
        blocker.release.set()
        time.sleep(0.2)
        assert req.state == "cancelled"  # late completion lost

    def test_cancel_terminal_is_a_noop(self, service):
        req = submit(service, id="done-cancel")
        assert req.wait_terminal(60)
        again = service.cancel("done-cancel")
        assert again.state == "done"

    def test_unknown_id_is_structured_not_found(self, service):
        with pytest.raises(ServeError) as info:
            service.get("nope")
        assert info.value.code == protocol.NOT_FOUND


class TestRecovery:
    def test_restart_completes_owed_request_bit_identically(self, tmp_path):
        root = tmp_path / "state"
        # A daemon died after acceptance: manifest on disk, no terminal
        # file, a journal holding a partial prefix from the first run.
        first = ServeService(root, backend="serial")
        first.start()
        req = submit(first, id="owed-1")
        assert req.wait_terminal(60)
        reference = canonical(req.result)
        # forge the crash: drop the terminal file, keep manifest+journal
        wait_file(req.directory / RESULT_FILE).unlink()
        first.stop()

        second = ServeService(root, backend="serial")
        recovered = second.start()
        assert recovered == 1
        replayed = second.get("owed-1")
        assert replayed.recovered
        assert replayed.wait_terminal(60)
        assert replayed.state == "done"
        assert canonical(replayed.result) == reference
        second.stop()

    def test_recovered_progress_replays_journal_prefix(self, tmp_path):
        root = tmp_path / "state"
        first = ServeService(root, backend="serial")
        first.start()
        req = submit(first, id="owed-2")
        assert req.wait_terminal(60)
        wait_file(req.directory / RESULT_FILE).unlink()
        first.stop()

        second = ServeService(root, backend="serial")
        second.start()
        replayed = second.get("owed-2")
        assert replayed.wait_terminal(60)
        assert replayed.progress() == req.progress()
        second.stop()

    def test_debris_does_not_break_recovery(self, tmp_path):
        root = tmp_path / "state"
        requests = root / "requests"
        requests.mkdir(parents=True)
        (requests / "not-a-dir").write_text("junk")
        (requests / "torn").mkdir()
        (requests / "torn" / MANIFEST_FILE).write_text('{"format": "re')
        (requests / "foreign").mkdir()
        (requests / "foreign" / MANIFEST_FILE).write_text('{"a": 1}')
        (requests / "renamed").mkdir()
        write_json_atomic(requests / "renamed" / MANIFEST_FILE, {
            "format": "repro-serve-request", "version": 1,
            "id": "other-name", "experiment": "faults", "params": {},
            "seq": 3,
        })
        assert scan_incomplete(requests) == []
        svc = ServeService(root, backend="serial")
        assert svc.start() == 0
        svc.stop()

    def test_seq_counter_resumes_past_recovered_requests(self, tmp_path):
        requests = tmp_path / "requests"
        (requests / "a").mkdir(parents=True)
        write_json_atomic(requests / "a" / MANIFEST_FILE, {
            "format": "repro-serve-request", "version": 1, "id": "a",
            "experiment": "faults", "params": {}, "seq": 7,
        })
        assert max_seq(requests) == 7

    def test_recovery_order_is_admission_order(self, tmp_path):
        requests = tmp_path / "requests"
        for name, seq in (("zz", 1), ("aa", 2)):
            (requests / name).mkdir(parents=True)
            write_json_atomic(requests / name / MANIFEST_FILE, {
                "format": "repro-serve-request", "version": 1, "id": name,
                "experiment": "faults", "params": {}, "seq": seq,
            })
        assert [m["id"] for m in scan_incomplete(requests)] == ["zz", "aa"]


class TestJournalFailures:
    def test_disk_failure_fails_request_not_daemon(self, service,
                                                  monkeypatch):
        def broken_journal(request):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(service, "_open_journal", broken_journal)
        req = submit(service, id="nospace")
        assert req.wait_terminal(30)
        assert req.state == "failed"
        assert req.error["code"] == protocol.JOURNAL_UNAVAILABLE
        assert req.error["retryable"] is True

        # the daemon survived: the next request (journal restored) works
        monkeypatch.undo()
        ok = submit(service, id="after-nospace")
        assert ok.wait_terminal(60)
        assert ok.state == "done"

    def test_torn_journal_header_restarts_the_run(self, service):
        # pre-tear the journal of an id, then submit it: the service must
        # discard the untrustworthy file and still produce the oracle
        # answer (the torn prefix proves nothing, so starting over is
        # bit-identical by definition).
        directory = service.requests_dir / "torn-j"
        directory.mkdir(parents=True)
        (directory / JOURNAL_FILE).write_text('{"format": "repro-jour')
        req = submit(service, id="torn-j")
        assert req.wait_terminal(60)
        assert req.state == "done"
        assert canonical(req.result) == canonical(
            oracle("faults", FAULT_PARAMS))

    def test_unexpected_runner_exception_is_structured(self, service):
        register(ExperimentAdapter(
            name="boom-test", validate=lambda p: dict(p),
            run=lambda p, ctx: 1 / 0,
        ))
        try:
            req = submit(service, "boom-test", {}, id="boom")
            assert req.wait_terminal(30)
            assert req.state == "failed"
            assert req.error["code"] == protocol.INTERNAL
            assert req.error["retryable"] is False
            assert "ZeroDivisionError" in req.error["message"]
        finally:
            _ADAPTERS.pop("boom-test", None)


class TestDrain:
    def test_drain_finishes_accepted_work(self, service):
        reqs = [submit(service, id=f"d{i}") for i in range(3)]
        assert service.drain(grace=120)
        assert all(r.state == "done" for r in reqs)

    def test_drain_grace_expiry_keeps_work_journaled(self, tmp_path,
                                                     blocker):
        svc = ServeService(tmp_path / "s", backend="serial")
        svc.start()
        submit(svc, "block-test", {}, id="stuck")
        assert blocker.started.wait(10)
        assert svc.drain(grace=0.3) is False
        # the unfinished request is still owed on disk
        assert load_manifest(
            svc.requests_dir / "stuck" / MANIFEST_FILE) is not None
        assert [m["id"] for m in scan_incomplete(svc.requests_dir)] == \
            ["stuck"]
        blocker.release.set()
        svc.stop()
