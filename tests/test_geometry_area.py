"""Tests for repro.geometry.area."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.area import Area


class TestConstruction:
    def test_paper_area(self):
        a = Area.paper()
        assert a.width == 100.0 and a.height == 100.0

    def test_size(self):
        assert Area(20, 5).size == 100.0

    def test_diagonal(self):
        assert Area(3, 4).diagonal == pytest.approx(5.0)

    @pytest.mark.parametrize("w,h", [(0, 10), (10, 0), (-1, 10), (10, -2)])
    def test_rejects_non_positive(self, w, h):
        with pytest.raises(GeometryError):
            Area(w, h)

    def test_rejects_non_finite(self):
        with pytest.raises(GeometryError):
            Area(float("inf"), 10)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            Area(1, 1).width = 5  # type: ignore[misc]


class TestContains:
    def test_inside_and_outside(self):
        a = Area(10, 10)
        pts = np.array([[5, 5], [10, 10], [0, 0], [-0.1, 5], [5, 10.1]])
        assert a.contains(pts).tolist() == [True, True, True, False, False]

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            Area(10, 10).contains(np.zeros((3, 3)))


class TestClamp:
    def test_clamps_out_of_range(self):
        a = Area(10, 10)
        out = a.clamp(np.array([[-5.0, 5.0], [12.0, -1.0]]))
        assert out.tolist() == [[0.0, 5.0], [10.0, 0.0]]

    def test_returns_copy(self):
        pts = np.array([[1.0, 1.0]])
        out = Area(10, 10).clamp(pts)
        out[0, 0] = 99.0
        assert pts[0, 0] == 1.0

    def test_shape_validation(self):
        with pytest.raises(GeometryError):
            Area(10, 10).clamp(np.zeros(4))
