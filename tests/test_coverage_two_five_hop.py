"""Tests for the 2.5-hop coverage set (CH_HOP1/CH_HOP2 semantics)."""

import pytest
from hypothesis import given, settings

from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.two_five_hop import two_five_hop_coverage
from repro.errors import CoverageError
from repro.graph.adjacency import Graph
from repro.graph.traversal import bfs_distances

from strategies import connected_graphs


class TestFigure3Example:
    """Section 3's coverage sets, reproduced exactly."""

    def test_c1(self, fig3_clustering):
        cov = two_five_hop_coverage(fig3_clustering, 1)
        assert cov.c2 == frozenset({2, 3})
        assert cov.c3 == frozenset()

    def test_c2(self, fig3_clustering):
        cov = two_five_hop_coverage(fig3_clustering, 2)
        assert cov.c2 == frozenset({1, 3})
        assert cov.c3 == frozenset()

    def test_c3_uses_corrected_value(self, fig3_clustering):
        # The Section 3 text has a typo ("{1,2,3}"); the broadcast
        # illustration uses C(3) = {1, 2, 4}, which the topology implies.
        cov = two_five_hop_coverage(fig3_clustering, 3)
        assert cov.c2 == frozenset({1, 2, 4})
        assert cov.c3 == frozenset()

    def test_c4_split(self, fig3_clustering):
        # C(4) = C2(4) ∪ C3(4) = {3} ∪ {1}.
        cov = two_five_hop_coverage(fig3_clustering, 4)
        assert cov.c2 == frozenset({3})
        assert cov.c3 == frozenset({1})

    def test_c4_witnesses(self, fig3_clustering):
        cov = two_five_hop_coverage(fig3_clustering, 4)
        assert cov.direct_witnesses[3] == frozenset({9, 10})
        # 1[5] heard via 9: the pair (9, 5).
        assert cov.indirect_witnesses[1] == frozenset({(9, 5)})

    def test_ch_hop1_filtering(self, fig3_clustering):
        # "node 4 is not added to node 5's 2-hop neighbor clusterhead set":
        # head 1's coverage set must not contain 4 even though 4 is three
        # hops away via 5-9, because 9's head is 3, not 4.
        cov = two_five_hop_coverage(fig3_clustering, 1)
        assert 4 not in cov.all_targets


class TestGuards:
    def test_non_head_rejected(self, fig3_clustering):
        with pytest.raises(CoverageError):
            two_five_hop_coverage(fig3_clustering, 5)

    def test_isolated_head_empty_coverage(self):
        cs = lowest_id_clustering(Graph(nodes=[1]))
        cov = two_five_hop_coverage(cs, 1)
        assert cov.size == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_c2_is_exactly_distance_two_heads(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = two_five_hop_coverage(cs, head)
            dist = bfs_distances(graph, head, max_depth=2)
            expected = {
                h for h in cs.clusterheads if dist.get(h) == 2
            }
            assert cov.c2 == expected

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_c3_members_have_member_in_n2(self, graph):
        # Defining property of the 2.5-hop set: each C3 head has a cluster
        # member within two hops of the owner.
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = two_five_hop_coverage(cs, head)
            dist = bfs_distances(graph, head, max_depth=3)
            for ch in cov.c3:
                assert dist.get(ch) == 3
                members_in_n2 = [
                    m for m in cs.members(ch) if dist.get(m, 99) <= 2
                ]
                assert members_in_n2, (head, ch)

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_witness_paths_are_real(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = two_five_hop_coverage(cs, head)
            for ch, vs in cov.direct_witnesses.items():
                for v in vs:
                    assert graph.has_edge(head, v) and graph.has_edge(v, ch)
            for ch, pairs in cov.indirect_witnesses.items():
                for v, w in pairs:
                    assert graph.has_edge(head, v)
                    assert graph.has_edge(v, w)
                    assert cs.head_of[w] == ch
