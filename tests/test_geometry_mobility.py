"""Tests for mobility models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.area import Area
from repro.geometry.mobility import RandomWalk, RandomWaypoint, clamp_to_area
from repro.geometry.placement import uniform_placement


class TestClampToArea:
    def test_reflects_negative(self):
        area = Area(10, 10)
        out = clamp_to_area(np.array([[-2.0, 5.0]]), area)
        assert out[0].tolist() == [2.0, 5.0]

    def test_reflects_over_limit(self):
        area = Area(10, 10)
        out = clamp_to_area(np.array([[12.0, 5.0]]), area)
        assert out[0].tolist() == [8.0, 5.0]

    def test_inside_unchanged(self):
        area = Area(10, 10)
        out = clamp_to_area(np.array([[3.0, 7.0]]), area)
        assert out[0].tolist() == [3.0, 7.0]

    def test_multiple_folds(self):
        area = Area(10, 10)
        out = clamp_to_area(np.array([[23.0, 0.0]]), area)
        assert 0.0 <= out[0, 0] <= 10.0


class TestRandomWalk:
    def test_step_distance_equals_speed_dt(self):
        area = Area(1000, 1000)
        walk = RandomWalk(speed=2.0, area=area, rng=0)
        pts = np.full((50, 2), 500.0)
        moved = walk.step(pts, dt=3.0)
        dist = np.linalg.norm(moved - pts, axis=1)
        assert np.allclose(dist, 6.0)

    def test_stays_in_area(self):
        area = Area(10, 10)
        walk = RandomWalk(speed=5.0, area=area, rng=1)
        pts = uniform_placement(40, area, rng=2)
        for _ in range(20):
            pts = walk.step(pts, 1.0)
            assert area.contains(pts).all()

    def test_zero_speed_is_stationary(self):
        walk = RandomWalk(speed=0.0, rng=0)
        pts = uniform_placement(5, rng=0)
        assert np.allclose(walk.step(pts, 1.0), pts)

    def test_negative_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(speed=-1.0)

    def test_negative_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWalk(speed=1.0).step(np.zeros((1, 2)), -1.0)


class TestRandomWaypoint:
    def test_moves_toward_targets(self):
        model = RandomWaypoint(speed_range=(1.0, 1.0), area=Area(100, 100), rng=0)
        pts = uniform_placement(20, Area(100, 100), rng=1)
        moved = model.step(pts, dt=1.0)
        dist = np.linalg.norm(moved - pts, axis=1)
        assert (dist <= 1.0 + 1e-9).all()
        assert dist.max() > 0.0

    def test_stays_in_area_long_run(self):
        area = Area(20, 20)
        model = RandomWaypoint(speed_range=(0.5, 3.0), area=area, rng=3)
        pts = uniform_placement(15, area, rng=4)
        for _ in range(50):
            pts = model.step(pts, 2.0)
            assert area.contains(pts).all()

    def test_pause_slows_progress(self):
        area = Area(50, 50)
        fast = RandomWaypoint(speed_range=(1.0, 1.0), pause_time=0.0,
                              area=area, rng=5)
        slow = RandomWaypoint(speed_range=(1.0, 1.0), pause_time=10.0,
                              area=area, rng=5)
        pts = uniform_placement(30, area, rng=6)
        moved_fast = pts.copy()
        moved_slow = pts.copy()
        for _ in range(40):
            moved_fast = fast.step(moved_fast, 1.0)
            moved_slow = slow.step(moved_slow, 1.0)
        travelled_fast = np.linalg.norm(moved_fast - pts, axis=1).sum()
        travelled_slow = np.linalg.norm(moved_slow - pts, axis=1).sum()
        assert travelled_slow < travelled_fast

    def test_speed_range_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed_range=(2.0, 1.0))

    def test_negative_pause_rejected(self):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(pause_time=-1.0)


class TestParameterValidation:
    """NaN/inf parameters must fail fast, not poison positions silently.

    Regression suite: a NaN speed or dt used to propagate straight into
    the position array (NaN > anything is False, so the reflection clamp
    passed it through), producing a fully-NaN network ticks later.
    """

    @pytest.mark.parametrize("speed", [float("nan"), float("inf"), -0.5])
    def test_walk_rejects_bad_speed(self, speed):
        with pytest.raises(ConfigurationError):
            RandomWalk(speed=speed)

    @pytest.mark.parametrize("speed_range", [
        (float("nan"), 1.0),
        (1.0, float("nan")),
        (1.0, float("inf")),
        (-1.0, 1.0),
    ])
    def test_waypoint_rejects_bad_speed_range(self, speed_range):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(speed_range=speed_range)

    @pytest.mark.parametrize("pause", [float("nan"), float("inf"), -2.0])
    def test_waypoint_rejects_bad_pause(self, pause):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(pause_time=pause)

    @pytest.mark.parametrize("dt", [float("nan"), float("-inf"), -0.1])
    def test_walk_rejects_bad_dt(self, dt):
        walk = RandomWalk(speed=1.0, rng=0)
        with pytest.raises(ConfigurationError):
            walk.step(np.zeros((3, 2)), dt)

    @pytest.mark.parametrize("dt", [float("nan"), float("inf"), -1.0])
    def test_waypoint_rejects_bad_dt(self, dt):
        model = RandomWaypoint(rng=0)
        with pytest.raises(ConfigurationError):
            model.step(np.zeros((3, 2)), dt)

    def test_zero_dt_is_identity(self):
        model = RandomWaypoint(rng=0)
        pts = uniform_placement(6, rng=1)
        assert np.allclose(model.step(pts, 0.0), pts)
