"""Tests for unit-disk range computations and degree calibration."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, GeometryError
from repro.geometry.area import Area
from repro.geometry.disk import (
    calibrate_range_empirical,
    expected_degree,
    mean_degree_of,
    pairwise_distances,
    range_for_target_degree,
)


class TestPairwiseDistances:
    def test_symmetric_zero_diagonal(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [6.0, 8.0]])
        d = pairwise_distances(pts)
        assert d[0, 0] == 0.0
        assert d[0, 1] == pytest.approx(5.0)
        assert np.allclose(d, d.T)

    def test_bad_shape(self):
        with pytest.raises(GeometryError):
            pairwise_distances(np.zeros(5))


class TestRangeForTargetDegree:
    def test_inverts_expected_degree(self):
        r = range_for_target_degree(50, 6.0)
        assert expected_degree(50, r, Area.paper()) == pytest.approx(6.0)

    def test_paper_magnitude(self):
        # n=100, d=6 in 100x100: r = sqrt(6*10^4 / (99 pi)) ~ 13.9
        r = range_for_target_degree(100, 6.0)
        assert 13.0 < r < 15.0

    def test_denser_target_larger_range(self):
        assert range_for_target_degree(50, 18.0) > range_for_target_degree(50, 6.0)

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            range_for_target_degree(1, 3.0)

    @pytest.mark.parametrize("d", [0.0, -2.0, 100.0])
    def test_rejects_infeasible_degree(self, d):
        with pytest.raises(ConfigurationError):
            range_for_target_degree(50, d)


class TestMeanDegree:
    def test_two_nodes_in_range(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert mean_degree_of(pts, 1.5) == 1.0

    def test_strict_inequality_at_radius(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        assert mean_degree_of(pts, 1.0) == 0.0

    def test_single_node(self):
        assert mean_degree_of(np.array([[1.0, 1.0]]), 5.0) == 0.0


class TestEmpiricalCalibration:
    def test_hits_target_within_tolerance(self):
        target = 8.0
        r = calibrate_range_empirical(60, target, samples=8, tolerance=0.05, rng=1)
        measured = np.mean(
            [
                mean_degree_of(
                    np.random.default_rng(s).random((60, 2)) * 100.0, r
                )
                for s in range(30)
            ]
        )
        assert measured == pytest.approx(target, rel=0.15)

    def test_calibrated_exceeds_analytic(self):
        # Border truncation forces a larger range than the analytic formula.
        analytic = range_for_target_degree(60, 8.0)
        empirical = calibrate_range_empirical(60, 8.0, samples=8, rng=1)
        assert empirical > analytic

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            calibrate_range_empirical(10, 3.0, samples=0)
        with pytest.raises(ConfigurationError):
            calibrate_range_empirical(10, 3.0, tolerance=1.5)


class TestExpectedDegree:
    def test_formula(self):
        area = Area(10, 10)
        assert expected_degree(11, 1.0, area) == pytest.approx(
            10 * math.pi / 100.0
        )

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            expected_degree(0, 1.0, Area.paper())

    def test_rejects_bad_radius(self):
        with pytest.raises(GeometryError):
            expected_degree(5, 0.0, Area.paper())
