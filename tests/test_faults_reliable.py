"""Tests for the reliable (ACK/retransmit + fallback) broadcast layer."""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import BroadcastError, NodeNotFoundError
from repro.faults.injector import FaultInjector
from repro.faults.reliable import (
    BackboneFallback,
    ReliableBroadcast,
    reliable_sd,
    reliable_si,
)
from repro.faults.schedule import FaultSchedule, NodeDown, apply_schedule
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.sim.network import SimNetwork


def build(seed=7, n=40, degree=8.0):
    net = random_geometric_network(n, degree, rng=seed)
    return net.graph, lowest_id_clustering(net.graph)


class TestValidation:
    def test_bad_arq_parameters_rejected(self):
        graph, _ = build(n=20)
        net = SimNetwork(graph)
        with pytest.raises(BroadcastError, match="max_retries"):
            ReliableBroadcast(net, graph.nodes(), max_retries=-1)
        with pytest.raises(BroadcastError, match="round trip"):
            ReliableBroadcast(net, graph.nodes(), base_timeout=1.0)
        with pytest.raises(BroadcastError, match="backoff"):
            ReliableBroadcast(net, graph.nodes(), backoff=0.5)

    def test_unknown_source_rejected(self):
        graph, structure = build(n=20)
        net = SimNetwork(graph)
        protocol = reliable_si(net, structure, fallback=False)
        with pytest.raises(NodeNotFoundError):
            protocol.start(999)


class TestIdealChannel:
    def test_full_delivery_no_retransmissions(self):
        graph, structure = build()
        net = SimNetwork(graph)
        protocol = reliable_si(net, structure, fallback=False)
        protocol.start(min(graph.nodes()))
        net.run_phase()
        out = protocol.outcome()
        assert out.result.received == frozenset(graph.nodes())
        assert out.retransmissions == 0
        assert out.declared_dead == frozenset()
        # Every non-source node acks exactly once on an ideal channel
        # (the source's own data transmission is its implicit ACK).
        assert out.ack_transmissions == graph.num_nodes - 1
        assert out.result.transmissions == out.data_transmissions

    def test_forward_set_matches_static_backbone(self):
        graph, structure = build()
        net = SimNetwork(graph)
        backbone = build_static_backbone(structure)
        protocol = reliable_si(net, structure, fallback=False)
        source = min(graph.nodes())
        protocol.start(source)
        net.run_phase()
        out = protocol.outcome()
        assert out.result.forward_nodes == backbone.nodes | {source}


class TestLossyChannel:
    def test_delivers_where_plain_si_drops(self):
        graph, structure = build()
        source = min(graph.nodes())
        net = SimNetwork(graph, loss_probability=0.3, rng=0)
        protocol = reliable_si(net, structure, fallback=False)
        protocol.start(source)
        net.run_phase()
        out = protocol.outcome()
        assert out.result.received == frozenset(graph.nodes())
        assert out.retransmissions > 0
        assert out.overhead_factor > 1.0

    def test_duplicate_data_triggers_reack_only(self):
        # Two nodes: the source retransmits until acked; the neighbour
        # re-acks duplicates but never re-forwards.
        graph = Graph(edges=[(0, 1)])
        net = SimNetwork(graph, loss_probability=0.6, rng=3)
        protocol = ReliableBroadcast(net, [0, 1], max_retries=8)
        protocol.start(0)
        net.run_phase()
        out = protocol.outcome()
        assert out.result.received == frozenset({0, 1})
        # 1 forwarded exactly once no matter how many copies it heard.
        assert out.result.forward_nodes == frozenset({0, 1})


class TestCrashFallback:
    def test_crashed_relay_triggers_repair(self):
        graph, structure = build(seed=7)
        source = min(graph.nodes())
        backbone = build_static_backbone(structure)
        victim = max(v for v in backbone.nodes if v != source)
        net = SimNetwork(graph)
        injector = FaultInjector(net)
        apply_schedule(FaultSchedule([NodeDown(time=0.5, node=victim)]),
                       injector)
        protocol = reliable_si(net, structure, injector=injector)
        protocol.start(source)
        net.run_phase()
        out = protocol.outcome()
        assert victim in out.declared_dead
        assert victim not in out.result.received
        # Every node still reachable without the victim is delivered.
        from repro.workload.faultsweep import eligible_nodes

        reachable = eligible_nodes(graph, source, {victim})
        assert reachable <= set(out.result.received)

    def test_crashed_node_never_acks_or_forwards(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        net = SimNetwork(graph)
        injector = FaultInjector(net)
        injector.crash(1)
        protocol = ReliableBroadcast(net, [0, 1, 2], max_retries=2,
                                     injector=injector)
        protocol.start(0)
        net.run_phase()
        out = protocol.outcome()
        assert 1 not in out.result.received
        assert 2 not in out.result.received  # 1 was the only path
        assert out.declared_dead == frozenset({1})
        assert out.gave_up == frozenset({(0, 1)})

    def test_sd_plan_promotes_new_relays_after_crash(self):
        graph, structure = build(seed=7)
        source = min(graph.nodes())
        backbone = build_static_backbone(structure)
        victim = max(v for v in backbone.nodes if v != source)
        net = SimNetwork(graph)
        injector = FaultInjector(net)
        apply_schedule(FaultSchedule([NodeDown(time=0.5, node=victim)]),
                       injector)
        protocol = reliable_sd(net, structure, source, injector=injector)
        protocol.start(source)
        net.run_phase()
        out = protocol.outcome()
        from repro.workload.faultsweep import eligible_nodes

        reachable = eligible_nodes(graph, source, {victim})
        assert reachable <= set(out.result.received)
        # The lean SD plan lost a relay; repair had to promote survivors.
        assert out.promoted


class TestBackboneFallback:
    def test_node_removal_reruns_gateway_selection(self):
        graph, structure = build(seed=7)
        fallback = BackboneFallback(graph)
        heads = set(structure.clusterheads)
        victim = min(heads)  # kill a clusterhead outright
        repaired = fallback.backbone_after_failures([victim])
        assert victim not in repaired
        # The repaired set matches a from-scratch build on G - victim.
        stripped = graph.copy()
        for w in sorted(graph.neighbours_view(victim)):
            stripped.remove_edge(victim, w)
        scratch = build_static_backbone(lowest_id_clustering(stripped))
        assert repaired == frozenset(scratch.nodes) - {victim}

    def test_repeated_and_duplicate_failures(self):
        graph, structure = build(seed=9, n=30)
        fallback = BackboneFallback(graph)
        a, b = sorted(graph.nodes())[:2]
        first = fallback.backbone_after_failures([a])
        second = fallback.backbone_after_failures([a, b])  # a is repeated
        assert a not in second and b not in second
        assert fallback.removed == frozenset({a, b})
        assert first  # sanity: repairs return non-empty backbones

    def test_unknown_node_rejected(self):
        graph, _ = build(n=20)
        with pytest.raises(NodeNotFoundError):
            BackboneFallback(graph).backbone_after_failures([999])

    def test_original_graph_not_mutated(self):
        graph, _ = build(n=25)
        edges = graph.edges()
        fallback = BackboneFallback(graph)
        fallback.backbone_after_failures(sorted(graph.nodes())[:3])
        assert graph.edges() == edges


class TestDeterminism:
    def test_same_seed_identical_outcome(self):
        def run():
            graph, structure = build(seed=13, n=30)
            source = min(graph.nodes())
            net = SimNetwork(graph, loss_probability=0.25, rng=5)
            injector = FaultInjector(net, rng=6)
            apply_schedule(FaultSchedule([NodeDown(time=2.0, node=max(
                build_static_backbone(structure).nodes))]), injector)
            protocol = reliable_si(net, structure, injector=injector)
            protocol.start(source)
            net.run_phase()
            out = protocol.outcome()
            trace = [(e.time, e.sender, type(e.message).__name__)
                     for e in net.trace.entries]
            return out, trace

        out_a, trace_a = run()
        out_b, trace_b = run()
        assert trace_a == trace_b
        assert out_a == out_b
