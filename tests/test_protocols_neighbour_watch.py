"""Tests for the periodic neighbour-watch protocol on changing topologies."""

import numpy as np
import pytest

from repro.errors import ProtocolError, SimulationError
from repro.geometry.mobility import RandomWalk
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.protocols.neighbour_watch import NeighbourWatchProtocol
from repro.sim.network import SimNetwork


def make_watch(graph, **kwargs):
    net = SimNetwork(graph)
    return net, NeighbourWatchProtocol(net, **kwargs)


class TestStaticTopology:
    def test_first_round_discovers_all_links(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        net, watch = make_watch(g)
        events = watch.run_round()
        ups = {(e.node, e.neighbour) for e in events if e.up}
        assert ups == {(0, 1), (1, 0), (1, 2), (2, 1)}
        assert watch.belief_matches_topology()

    def test_stable_rounds_emit_nothing(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        net, watch = make_watch(g)
        watch.run_round()
        for _ in range(4):
            assert watch.run_round() == []

    def test_parameter_validation(self):
        g = Graph(edges=[(0, 1)])
        net = SimNetwork(g)
        with pytest.raises(ProtocolError):
            NeighbourWatchProtocol(net, timeout_rounds=0)
        with pytest.raises(ProtocolError):
            NeighbourWatchProtocol(net, period=0.5)


class TestLinkChanges:
    def test_link_up_detected_next_round(self):
        g = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        net, watch = make_watch(g)
        watch.run_round()
        g2 = Graph(nodes=[0, 1, 2], edges=[(0, 1), (1, 2)])
        net.medium.update_graph(g2)
        net.graph = g2
        events = watch.run_round()
        ups = {(e.node, e.neighbour) for e in events if e.up}
        assert ups == {(1, 2), (2, 1)}

    def test_link_down_detected_after_timeout(self):
        g = Graph(nodes=[0, 1], edges=[(0, 1)])
        net, watch = make_watch(g, timeout_rounds=3)
        watch.run_round()
        g2 = Graph(nodes=[0, 1])
        net.medium.update_graph(g2)
        net.graph = g2
        downs = []
        for i in range(4):
            downs.extend(e for e in watch.run_round() if not e.up)
        assert {(e.node, e.neighbour) for e in downs} == {(0, 1), (1, 0)}
        # Detected exactly timeout_rounds after the last beacon (round 0).
        assert all(e.round_index == 3 for e in downs)
        assert watch.belief_matches_topology()

    def test_flap_within_timeout_not_reported_down(self):
        g_up = Graph(nodes=[0, 1], edges=[(0, 1)])
        g_down = Graph(nodes=[0, 1])
        net, watch = make_watch(g_up, timeout_rounds=3)
        watch.run_round()
        net.medium.update_graph(g_down)
        net.graph = g_down
        watch.run_round()  # one silent round < timeout
        net.medium.update_graph(g_up)
        net.graph = g_up
        events = watch.run_round()
        assert all(e.up for e in watch.events)  # no down was ever declared

    def test_node_set_change_rejected(self):
        g = Graph(nodes=[0, 1], edges=[(0, 1)])
        net, _watch = make_watch(g)
        with pytest.raises(SimulationError):
            net.medium.update_graph(Graph(nodes=[0, 1, 2]))


class TestUnderMobility:
    def test_beliefs_converge_after_stabilisation(self):
        net_snapshot = random_geometric_network(25, 8.0, rng=3)
        sim_net = SimNetwork(net_snapshot.graph)
        watch = NeighbourWatchProtocol(sim_net, timeout_rounds=2)
        walk = RandomWalk(speed=3.0, area=net_snapshot.area, rng=4)
        current = net_snapshot
        # Churn for several rounds.
        for _ in range(5):
            moved = current.moved(
                walk.step(current.position_array(), 1.0)
            )
            sim_net.medium.update_graph(moved.graph)
            sim_net.graph = moved.graph
            watch.run_round()
            current = moved
        # Freeze the topology; after timeout_rounds stable rounds the
        # beliefs must equal the true adjacency.
        for _ in range(3):
            watch.run_round()
        assert watch.belief_matches_topology()

    def test_event_stream_is_consistent(self):
        # Every down event must have a matching earlier up event.
        net_snapshot = random_geometric_network(20, 8.0, rng=6)
        sim_net = SimNetwork(net_snapshot.graph)
        watch = NeighbourWatchProtocol(sim_net, timeout_rounds=2)
        walk = RandomWalk(speed=4.0, area=net_snapshot.area, rng=7)
        current = net_snapshot
        for _ in range(8):
            moved = current.moved(walk.step(current.position_array(), 1.0))
            sim_net.medium.update_graph(moved.graph)
            sim_net.graph = moved.graph
            watch.run_round()
            current = moved
        seen_up = set()
        for e in watch.events:
            key = (e.node, e.neighbour)
            if e.up:
                assert key not in seen_up
                seen_up.add(key)
            else:
                assert key in seen_up
                seen_up.discard(key)
