"""Tests for dominating/independent/CDS predicates and degree stats."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, star_graph
from repro.graph.properties import (
    degree_stats,
    is_connected_dominating_set,
    is_dominating_set,
    is_independent_set,
    is_maximal_independent_set,
)


@pytest.fixture
def p5():
    return chain_graph(5)  # 0-1-2-3-4


class TestDominatingSet:
    def test_hub_dominates_star(self):
        assert is_dominating_set(star_graph(6), [0])

    def test_leaf_does_not_dominate_star(self):
        assert not is_dominating_set(star_graph(6), [1])

    def test_chain_alternating(self, p5):
        assert is_dominating_set(p5, [1, 3])
        assert not is_dominating_set(p5, [0, 4])  # node 2 uncovered

    def test_whole_set_dominates(self, p5):
        assert is_dominating_set(p5, p5.nodes())

    def test_unknown_node_rejected(self, p5):
        with pytest.raises(NodeNotFoundError):
            is_dominating_set(p5, [99])


class TestIndependentSet:
    def test_alternating_chain(self, p5):
        assert is_independent_set(p5, [0, 2, 4])

    def test_adjacent_pair_not_independent(self, p5):
        assert not is_independent_set(p5, [0, 1])

    def test_empty_is_independent(self, p5):
        assert is_independent_set(p5, [])

    def test_maximal_independent(self, p5):
        assert is_maximal_independent_set(p5, [1, 3])
        assert not is_maximal_independent_set(p5, [0, 4])  # 2 can be added


class TestCds:
    def test_chain_interior_is_cds(self, p5):
        assert is_connected_dominating_set(p5, [1, 2, 3])

    def test_disconnected_dominators_not_cds(self, p5):
        assert not is_connected_dominating_set(p5, [1, 3])

    def test_non_dominating_connected_not_cds(self, p5):
        assert not is_connected_dominating_set(p5, [0, 1])

    def test_empty_graph_empty_cds(self):
        assert is_connected_dominating_set(Graph(), [])

    def test_single_node_graph(self):
        g = Graph(nodes=[7])
        assert is_connected_dominating_set(g, [7])
        assert not is_connected_dominating_set(g, [])


class TestDegreeStats:
    def test_star(self):
        stats = degree_stats(star_graph(4))
        assert stats.maximum == 4 == stats.delta
        assert stats.minimum == 1
        assert stats.mean == pytest.approx(8 / 5)

    def test_empty_graph(self):
        stats = degree_stats(Graph())
        assert stats.mean == 0.0 and stats.delta == 0

    def test_regular_graph_zero_std(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        assert degree_stats(g).std == 0.0
