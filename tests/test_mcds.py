"""Tests for exact MCDS, greedy CDS and the approximation-ratio study."""

import pytest
from hypothesis import given, settings

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, grid_graph, star_graph
from repro.graph.properties import is_connected_dominating_set
from repro.mcds.exact import exact_mcds, mcds_size_lower_bound
from repro.mcds.greedy import greedy_cds
from repro.mcds.ratio import approximation_ratio_study

from strategies import connected_graphs


class TestExactMcds:
    def test_star_hub(self):
        assert exact_mcds(star_graph(7)) == frozenset({0})

    def test_chain_interior(self):
        assert exact_mcds(chain_graph(5)) == frozenset({1, 2, 3})

    def test_single_and_pair(self):
        assert exact_mcds(Graph(nodes=[4])) == frozenset({4})
        assert exact_mcds(Graph(edges=[(2, 9)])) == frozenset({2})

    def test_triangle(self):
        assert len(exact_mcds(Graph(edges=[(0, 1), (1, 2), (0, 2)]))) == 1

    def test_grid_3x3_centre(self):
        # The centre plus two opposite mid-edges is optimal (size 3).
        mcds = exact_mcds(grid_graph(3, 3))
        assert len(mcds) == 3
        assert is_connected_dominating_set(grid_graph(3, 3), mcds)

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            exact_mcds(Graph(edges=[(0, 1), (3, 4)]))

    def test_size_limit(self):
        with pytest.raises(ConfigurationError):
            exact_mcds(chain_graph(30), max_nodes=24)

    def test_empty_graph(self):
        assert exact_mcds(Graph()) == frozenset()

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs(min_nodes=3, max_nodes=12))
    def test_result_is_minimum(self, graph):
        mcds = exact_mcds(graph)
        assert is_connected_dominating_set(graph, mcds)
        # No strictly smaller CDS exists.
        from itertools import combinations

        candidates = graph.nodes()
        for smaller in combinations(candidates, len(mcds) - 1):
            assert not is_connected_dominating_set(graph, smaller)


class TestLowerBound:
    def test_star(self):
        # ceil(8 / 8) = 1.
        assert mcds_size_lower_bound(star_graph(7)) == 1

    def test_chain(self):
        assert mcds_size_lower_bound(chain_graph(9)) == 3

    def test_bound_never_exceeds_optimum(self):
        for g in (chain_graph(7), grid_graph(3, 3), star_graph(5)):
            assert mcds_size_lower_bound(g) <= len(exact_mcds(g))


class TestGreedyCds:
    def test_star(self):
        assert greedy_cds(star_graph(9)) == frozenset({0})

    def test_single_node(self):
        assert greedy_cds(Graph(nodes=[3])) == frozenset({3})

    def test_disconnected_rejected(self):
        with pytest.raises(DisconnectedGraphError):
            greedy_cds(Graph(nodes=[0, 1]))

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_always_a_cds(self, graph):
        cds = greedy_cds(graph)
        assert is_connected_dominating_set(graph, cds)

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs(min_nodes=3, max_nodes=12))
    def test_at_least_exact_size(self, graph):
        assert len(greedy_cds(graph)) >= len(exact_mcds(graph))


class TestRatioStudy:
    def test_small_study_runs(self):
        samples = approximation_ratio_study(samples=4, n=10,
                                            average_degree=4.0, rng=0)
        assert len(samples) == 4
        for s in samples:
            assert s.mcds_size >= 1
            assert s.static_ratio >= 1.0
            assert s.mo_ratio >= 1.0
            # The dynamic forward count includes all clusterheads, so it can
            # sit below the static size but never below 1x a single head.
            assert s.dynamic_ratio > 0.0
