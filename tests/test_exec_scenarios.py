"""Tests for the cross-experiment scenario cache."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.exec.scenarios import (
    Scenario,
    ScenarioCache,
    ScenarioKey,
    connected_network,
    connected_scenario,
    get_scenario_cache,
    scenario_positions,
)
from repro.geometry.area import Area


def _key(index=0, root=1):
    return ScenarioKey(n=20, degree=8.0, width=100.0, height=100.0,
                       torus=False, root=root, index=index)


class TestScenarioKey:
    def test_stream_is_a_pure_function_of_the_key(self):
        a = _key().seed_sequence().generate_state(4)
        b = _key().seed_sequence().generate_state(4)
        assert (a == b).all()

    def test_distinct_fields_give_distinct_streams(self):
        base = _key().seed_sequence().generate_state(4)
        for other in (_key(index=1), _key(root=2)):
            assert not (other.seed_sequence().generate_state(4) == base).all()


class TestScenarioCache:
    def test_same_key_returns_the_same_object(self):
        cache = ScenarioCache(maxsize=8)
        a = cache.get(_key())
        b = cache.get(_key())
        assert a is b
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1}

    def test_draw_is_deterministic_across_caches(self):
        a = ScenarioCache(maxsize=8).get(_key()).network
        b = ScenarioCache(maxsize=8).get(_key()).network
        assert a.graph.edges() == b.graph.edges()
        assert a.positions == b.positions

    def test_lru_bound_holds(self):
        cache = ScenarioCache(maxsize=2)
        for i in range(4):
            cache.get(_key(index=i))
        assert len(cache) == 2
        # The two most recent keys survive.
        assert cache.get(_key(index=3)) and cache.stats()["hits"] == 1

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioCache(maxsize=-1)

    def test_clear_resets_counters(self):
        cache = ScenarioCache(maxsize=4)
        cache.get(_key())
        cache.clear()
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}

    def test_clustering_is_memoized_per_scenario(self):
        scenario = ScenarioCache(maxsize=4).get(_key())
        assert scenario.clustering is scenario.clustering


class TestConnectedScenario:
    def test_default_cache_is_shared_across_callers(self):
        get_scenario_cache().clear()
        a = connected_scenario(20, 8.0, root=5, index=0)
        b = connected_scenario(20, 8.0, root=5, index=0)
        assert a is b

    def test_cross_experiment_pairing(self):
        """Two 'experiments' agreeing on (root, env, index) share samples."""
        fig_a = connected_network(20, 8.0, root=7, index=3)
        fig_b = connected_network(20, 8.0, root=7, index=3)
        assert fig_a is fig_b  # not merely equal: the same cached object

    def test_explicit_cache_and_bypass(self):
        mine = ScenarioCache(maxsize=4)
        s = connected_scenario(20, 8.0, root=1, cache=mine)
        assert len(mine) == 1
        off = ScenarioCache(maxsize=0)
        t = connected_scenario(20, 8.0, root=1, cache=off)
        assert len(off) == 0
        assert isinstance(s, Scenario) and isinstance(t, Scenario)
        assert s.network.graph.edges() == t.network.graph.edges()

    def test_samples_are_connected(self):
        from repro.graph.connectivity import is_connected

        s = connected_scenario(25, 6.0, root=9, index=2)
        assert is_connected(s.network.graph)


class TestScenarioPositions:
    def test_cached_and_read_only(self):
        area = Area(100.0, 100.0)
        a = scenario_positions(50, area, root=3)
        b = scenario_positions(50, area, root=3)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            a[0, 0] = 1.0

    def test_distinct_roots_distinct_draws(self):
        area = Area(100.0, 100.0)
        a = scenario_positions(50, area, root=3)
        c = scenario_positions(50, area, root=4)
        assert not np.array_equal(a, c)
