"""Tests for delivery verification helpers."""

import pytest

from repro.broadcast.delivery import check_full_delivery, delivery_ratio
from repro.broadcast.flooding import blind_flooding
from repro.errors import BroadcastError
from repro.graph.adjacency import Graph


@pytest.fixture
def split_graph():
    return Graph(edges=[(0, 1), (1, 2), (5, 6)])


class TestDeliveryRatio:
    def test_full(self, fig3_graph):
        r = blind_flooding(fig3_graph, 1)
        assert delivery_ratio(fig3_graph, r) == 1.0

    def test_partial(self, split_graph):
        r = blind_flooding(split_graph, 0)
        assert delivery_ratio(split_graph, r) == pytest.approx(3 / 5)

    def test_empty_graph(self):
        r = blind_flooding(Graph(nodes=[0]), 0)
        assert delivery_ratio(Graph(), r) == 1.0


class TestCheckFullDelivery:
    def test_passes_on_full(self, fig3_graph):
        check_full_delivery(fig3_graph, blind_flooding(fig3_graph, 1))

    def test_raises_listing_missing(self, split_graph):
        r = blind_flooding(split_graph, 0)
        with pytest.raises(BroadcastError, match="missed 2"):
            check_full_delivery(split_graph, r)
