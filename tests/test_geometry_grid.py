"""Tests for the spatial hash grid."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.grid import SpatialGrid


def brute_force_pairs(pts: np.ndarray, radius: float) -> set:
    out = set()
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if np.linalg.norm(pts[i] - pts[j]) < radius:
                out.add((i, j))
    return out


class TestConstruction:
    def test_len(self):
        grid = SpatialGrid(np.random.default_rng(0).random((17, 2)), 0.2)
        assert len(grid) == 17

    def test_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            SpatialGrid(np.zeros((5, 3)), 1.0)

    @pytest.mark.parametrize("cell", [0.0, -1.0, float("nan")])
    def test_rejects_bad_cell_size(self, cell):
        with pytest.raises(GeometryError):
            SpatialGrid(np.zeros((2, 2)), cell)

    def test_cell_of_negative_coordinates(self):
        grid = SpatialGrid(np.array([[-0.5, -1.5]]), 1.0)
        assert grid.cell_of(np.array([-0.5, -1.5])) == (-1, -2)


class TestQueries:
    def test_neighbours_within_excludes_self(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.9, 0.0]])
        grid = SpatialGrid(pts, 1.0)
        assert set(grid.neighbours_within(0, 0.5)) == {1}

    def test_strict_inequality(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        grid = SpatialGrid(pts, 1.0)
        assert grid.neighbours_within(0, 1.0) == []

    def test_radius_larger_than_cell_rejected(self):
        grid = SpatialGrid(np.zeros((2, 2)), 1.0)
        with pytest.raises(GeometryError):
            grid.neighbours_within(0, 1.5)
        with pytest.raises(GeometryError):
            list(grid.pairs_within(1.5))

    def test_pairs_within_unique_and_ordered(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        pairs = list(SpatialGrid(pts, 1.0).pairs_within(1.0))
        assert len(pairs) == len(set(pairs)) == 3
        assert all(i < j for i, j in pairs)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 60),
        radius=st.floats(0.05, 0.5),
    )
    def test_pairs_match_brute_force(self, seed, n, radius):
        pts = np.random.default_rng(seed).random((n, 2))
        grid = SpatialGrid(pts, cell_size=radius)
        assert set(grid.pairs_within(radius)) == brute_force_pairs(pts, radius)
