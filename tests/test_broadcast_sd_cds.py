"""Tests for the dynamic (SD-CDS) backbone broadcast."""

import pytest
from hypothesis import given, settings

from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.errors import NodeNotFoundError
from repro.graph.properties import is_connected_dominating_set
from repro.types import CoveragePolicy, PruningLevel

from strategies import connected_graphs, geometric_networks


class TestPaperIllustration:
    """Section 3's SD walkthrough from source 1, reproduced step by step."""

    def test_seven_forward_nodes(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.result.forward_nodes == frozenset({1, 2, 3, 4, 6, 7, 9})
        assert dyn.result.num_forward_nodes == 7

    def test_source_selects_f1(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.forward_sets[1] == frozenset({6, 7})

    def test_head2_prunes_to_empty(self, fig3_clustering):
        # C(2) - C(1) - {1} = {1,3} - {2,3} - {1} = {} -> local broadcast.
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.pruned_targets[2] == frozenset()
        assert dyn.forward_sets[2] == frozenset()

    def test_head3_keeps_head4(self, fig3_clustering):
        # C(3) - C(1) - {1} = {1,2,4} - {2,3} - {1} = {4} -> selects 9.
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.pruned_targets[3] == frozenset({4})
        assert dyn.forward_sets[3] == frozenset({9})

    def test_head4_prunes_to_empty(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.forward_sets[4] == frozenset()

    def test_dynamic_beats_static_on_example(self, fig3_graph, fig3_clustering):
        static = broadcast_si(
            fig3_graph, build_static_backbone(fig3_clustering), 1
        )
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.result.num_forward_nodes < static.num_forward_nodes

    def test_backbone_nodes_is_sd_cds(self, fig3_graph, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert is_connected_dominating_set(fig3_graph, dyn.backbone_nodes)


class TestNonHeadSource:
    def test_member_source_triggers_its_head(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=10)
        assert 10 in dyn.result.forward_nodes
        assert 3 in dyn.forward_sets  # head of 10 ran a selection
        assert dyn.result.delivered_to_all(fig3_clustering.graph)

    def test_unknown_source(self, fig3_clustering):
        with pytest.raises(NodeNotFoundError):
            broadcast_sd(fig3_clustering, source=123)


class TestPruningLevels:
    @pytest.mark.parametrize("pruning", list(PruningLevel))
    def test_full_delivery_each_level(self, fig3_clustering, pruning):
        dyn = broadcast_sd(fig3_clustering, source=1, pruning=pruning)
        assert dyn.result.delivered_to_all(fig3_clustering.graph)

    def test_none_pruning_never_smaller_forward_sets(self, fig3_clustering):
        full = broadcast_sd(fig3_clustering, source=1,
                            pruning=PruningLevel.FULL)
        none = broadcast_sd(fig3_clustering, source=1,
                            pruning=PruningLevel.NONE)
        assert (none.result.num_forward_nodes
                >= full.result.num_forward_nodes)

    def test_algorithm_label_mentions_pruning(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1,
                           pruning=PruningLevel.BASIC)
        assert "basic" in dyn.result.algorithm


class TestCoverageReuse:
    def test_precomputed_coverage_sets(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering)
        dyn = broadcast_sd(fig3_clustering, source=1, coverage_sets=covs)
        assert dyn.result.num_forward_nodes == 7


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery_both_policies(self, graph):
        cs = lowest_id_clustering(graph)
        for policy in CoveragePolicy:
            dyn = broadcast_sd(cs, source=0, policy=policy)
            assert dyn.result.delivered_to_all(graph)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_all_heads_forward(self, graph):
        cs = lowest_id_clustering(graph)
        dyn = broadcast_sd(cs, source=graph.num_nodes - 1)
        assert cs.clusterheads <= dyn.result.forward_nodes

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_theorem2_backbone_is_cds(self, graph):
        cs = lowest_id_clustering(graph)
        dyn = broadcast_sd(cs, source=0)
        assert is_connected_dominating_set(graph, dyn.backbone_nodes)

    @settings(max_examples=20, deadline=None)
    @given(net=geometric_networks())
    def test_dynamic_not_worse_than_static_on_average_shape(self, net):
        # Per-sample the dynamic forward set must never exceed the static
        # backbone's forward set by more than the designation-race slack.
        cs = lowest_id_clustering(net.graph)
        static = broadcast_si(net.graph, build_static_backbone(cs), 0)
        dyn = broadcast_sd(cs, source=0)
        assert (dyn.result.num_forward_nodes
                <= static.num_forward_nodes + 3)

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs())
    def test_forward_nodes_heads_or_designated(self, graph):
        cs = lowest_id_clustering(graph)
        dyn = broadcast_sd(cs, source=0)
        designated = set()
        for f in dyn.forward_sets.values():
            designated |= f
        for v in dyn.result.forward_nodes:
            assert v == 0 or cs.is_clusterhead(v) or v in designated
