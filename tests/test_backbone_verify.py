"""Tests for backbone verification."""

import pytest

from repro.backbone.gateway_selection import GatewaySelection
from repro.backbone.static_backbone import Backbone, build_static_backbone
from repro.backbone.verify import verify_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import BackboneError
from repro.graph.adjacency import Graph
from repro.types import CoveragePolicy


def forged_backbone(structure, selections):
    """A Backbone with hand-crafted selections (to break invariants)."""
    return Backbone(
        structure=structure,
        policy=CoveragePolicy.TWO_FIVE_HOP,
        coverage_sets={},
        selections=selections,
        algorithm="forged",
    )


class TestVerify:
    def test_valid_backbone_passes(self, fig3_clustering):
        verify_backbone(build_static_backbone(fig3_clustering))

    def test_disconnected_backbone_rejected(self):
        # Chain 0-1-2-3-4: heads {0,2,4}; withhold all gateways.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        cs = lowest_id_clustering(g)
        bb = forged_backbone(cs, {})
        with pytest.raises(BackboneError, match="disconnected"):
            verify_backbone(bb)

    def test_non_dominating_never_happens_with_heads(self):
        # Heads always dominate, so forged backbones fail on connectivity
        # before domination; domination failure needs a custom node set.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        cs = lowest_id_clustering(g)
        sel = GatewaySelection(head=0, gateways=frozenset({1}), connectors={2: (1,)})
        sel2 = GatewaySelection(head=2, gateways=frozenset({3}), connectors={4: (3,)})
        bb = forged_backbone(cs, {0: sel, 2: sel2})
        verify_backbone(bb)  # 0,1,2,3,4 connected and dominating

    def test_disconnected_graph_per_component(self):
        g = Graph(edges=[(0, 1), (5, 6)])
        cs = lowest_id_clustering(g)
        bb = build_static_backbone(cs)
        verify_backbone(bb)  # components {0,1} and {5,6} each fine

    def test_disconnected_graph_broken_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4), (8, 9)])
        cs = lowest_id_clustering(g)
        bb = forged_backbone(cs, {})  # chain component needs gateways
        with pytest.raises(BackboneError):
            verify_backbone(bb)
