"""Tests for BroadcastResult accounting."""

import pytest

from repro.broadcast.result import BroadcastResult
from repro.graph.adjacency import Graph


def make_result(**overrides):
    kwargs = dict(
        source=0,
        algorithm="test",
        forward_nodes=frozenset({0, 1}),
        received=frozenset({0, 1, 2}),
        reception_time={0: 0, 1: 1, 2: 2},
        transmissions=2,
    )
    kwargs.update(overrides)
    return BroadcastResult(**kwargs)


class TestInvariants:
    def test_valid(self):
        r = make_result()
        assert r.num_forward_nodes == 2
        assert r.latency == 2

    def test_source_must_receive(self):
        with pytest.raises(ValueError):
            make_result(received=frozenset({1, 2}))

    def test_forwarders_must_receive(self):
        with pytest.raises(ValueError):
            make_result(forward_nodes=frozenset({0, 9}))

    def test_transmissions_lower_bound(self):
        with pytest.raises(ValueError):
            make_result(transmissions=1)

    def test_transmissions_may_exceed_forwarders(self):
        assert make_result(transmissions=5).transmissions == 5


class TestDelivery:
    def test_delivered_to_all(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert make_result().delivered_to_all(g)

    def test_not_delivered(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert not make_result().delivered_to_all(g)
