"""Tests for the scaling study."""

import pytest

from repro.workload.scaling import run_scaling_study


@pytest.fixture(scope="module")
def points():
    return run_scaling_study(ns=(100, 400), average_degree=10.0, rng=3)


class TestScalingStudy:
    def test_point_per_size(self, points):
        assert [p.n for p in points] == [100, 400]

    def test_component_dominates(self, points):
        # At d=10 the giant component holds almost everything.
        for p in points:
            assert p.component_n >= 0.8 * p.n

    def test_timings_positive_and_fast(self, points):
        for p in points:
            assert 0.0 <= p.total_seconds < 5.0
            assert p.total_seconds == pytest.approx(
                p.build_seconds + p.cluster_seconds
                + p.coverage_seconds + p.backbone_seconds
            )

    def test_fractions_sane(self, points):
        for p in points:
            assert 0.0 < p.dynamic_fraction <= p.backbone_fraction + 0.05
            assert p.backbone_fraction < 1.0

    def test_fixed_density_fraction_stability(self, points):
        small, large = points
        assert large.backbone_fraction == pytest.approx(
            small.backbone_fraction, abs=0.12
        )


class TestStageStreaming:
    def test_on_stage_streams_every_stage_in_order(self):
        events = []
        run_scaling_study(
            ns=(80, 150), average_degree=8.0, rng=5,
            on_stage=lambda n, stage, s: events.append((n, stage, s)),
            with_broadcast=False,
        )
        stages = ["construction", "clustering", "coverage", "selection"]
        assert [(n, st) for n, st, _ in events] == [
            (n, st) for n in (80, 150) for st in stages
        ]
        assert all(s >= 0.0 for _, _, s in events)

    def test_interrupted_run_keeps_completed_stages(self):
        # A callback that fails mid-study models an interrupt (timeout,
        # OOM-killer grace hook, Ctrl-C): everything already streamed
        # survives even though run_scaling_study never returns.
        events = []

        def boom(n, stage, seconds):
            events.append((n, stage))
            if n == 150 and stage == "coverage":
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_scaling_study(
                ns=(80, 150), average_degree=8.0, rng=5,
                on_stage=boom, with_broadcast=False,
            )
        assert events[-1] == (150, "coverage")
        assert (80, "selection") in events

    def test_broadcast_disabled_zeroes_dynamic_fraction(self):
        points = run_scaling_study(
            ns=(80,), average_degree=8.0, rng=5, with_broadcast=False,
        )
        assert points[0].dynamic_fraction == 0.0
        assert points[0].broadcast_seconds == 0.0
        assert points[0].backbone_fraction > 0.0

    def test_broadcast_stage_streams_when_enabled(self):
        events = []
        points = run_scaling_study(
            ns=(80,), average_degree=8.0, rng=5,
            on_stage=lambda n, stage, s: events.append(stage),
        )
        assert events == ["construction", "clustering", "coverage",
                          "selection", "broadcast"]
        assert points[0].broadcast_seconds > 0.0
        # Broadcast is measured separately; total_seconds stays the
        # construction pipeline.
        assert points[0].total_seconds == pytest.approx(
            points[0].build_seconds + points[0].cluster_seconds
            + points[0].coverage_seconds + points[0].backbone_seconds
        )
