"""Tests for the scaling study."""

import pytest

from repro.workload.scaling import run_scaling_study


@pytest.fixture(scope="module")
def points():
    return run_scaling_study(ns=(100, 400), average_degree=10.0, rng=3)


class TestScalingStudy:
    def test_point_per_size(self, points):
        assert [p.n for p in points] == [100, 400]

    def test_component_dominates(self, points):
        # At d=10 the giant component holds almost everything.
        for p in points:
            assert p.component_n >= 0.8 * p.n

    def test_timings_positive_and_fast(self, points):
        for p in points:
            assert 0.0 <= p.total_seconds < 5.0
            assert p.total_seconds == pytest.approx(
                p.build_seconds + p.cluster_seconds
                + p.coverage_seconds + p.backbone_seconds
            )

    def test_fractions_sane(self, points):
        for p in points:
            assert 0.0 < p.dynamic_fraction <= p.backbone_fraction + 0.05
            assert p.backbone_fraction < 1.0

    def test_fixed_density_fraction_stability(self, points):
        small, large = points
        assert large.backbone_fraction == pytest.approx(
            small.backbone_fraction, abs=0.12
        )
