"""Tests for the contention sweep driver (SINR + MAC under broadcast)."""

import json

import pytest

from repro.graph.generators import random_geometric_network
from repro.io.results import fault_sweep_to_json
from repro.workload.contention import (
    CONTENTION_PROTOCOLS,
    run_contention_scenario,
    run_contention_sweep,
)

SWEEP_KW = dict(losses=(0.0, 0.2), n=25, average_degree=8.0, trials=4)
AXES = ("delivery", "overhead", "latency", "collisions", "captures")


class TestScenario:
    def test_metric_keys_cover_all_protocols(self):
        network = random_geometric_network(25, 8.0, rng=1)
        metrics = run_contention_scenario(network, 0, rng=2)
        for proto in CONTENTION_PROTOCOLS:
            for axis in AXES:
                assert f"{axis}/{proto}" in metrics

    def test_deterministic(self):
        network = random_geometric_network(25, 8.0, rng=1)
        a = run_contention_scenario(network, 0, loss=0.1, rng=3)
        b = run_contention_scenario(network, 0, loss=0.1, rng=3)
        assert a == b

    def test_instant_mac_is_the_storm_worst_case(self):
        # Without a MAC, flooding's relays all air at once; CSMA must
        # recover delivery by desynchronising them.
        network = random_geometric_network(60, 10.0, rng=5)
        instant = run_contention_scenario(network, 0, mac="instant", rng=7)
        csma = run_contention_scenario(network, 0, mac="csma", rng=7)
        assert csma["delivery/flooding"] > instant["delivery/flooding"]

    def test_tdma_runs(self):
        network = random_geometric_network(25, 8.0, rng=1)
        metrics = run_contention_scenario(network, 0, mac="tdma", rng=2)
        assert 0.0 <= metrics["delivery/si"] <= 1.0


class TestSweep:
    def test_point_shape(self):
        points = run_contention_sweep(rng=0, **SWEEP_KW)
        assert [p.loss_probability for p in points] == [0.0, 0.2]
        for p in points:
            assert p.trials == 4
            for axis in AXES:
                assert set(getattr(p, axis)) == set(CONTENTION_PROTOCOLS)

    @pytest.mark.parametrize("backend,workers", [("thread", 4),
                                                 ("process", 2)])
    def test_bit_identical_across_backends(self, backend, workers):
        serial = run_contention_sweep(rng=9, **SWEEP_KW)
        pooled = run_contention_sweep(rng=9, backend=backend,
                                      parallel=workers, **SWEEP_KW)
        assert pooled == serial

    def test_backbone_beats_flooding_at_paper_scale(self):
        # The PR's acceptance gate (also enforced by bench_channel): at
        # n=100 under SINR + CSMA, flooding's redundancy destroys its own
        # delivery while the CDS backbones stay ahead.
        points = run_contention_sweep(
            losses=(0.0,), n=100, average_degree=8.0, trials=6, rng=42,
        )
        delivery = points[0].delivery
        assert delivery["flooding"] < delivery["si"]
        assert delivery["flooding"] < delivery["sd"]
        assert points[0].collisions["flooding"] > points[0].collisions["si"]

    def test_fault_sweep_under_interference(self):
        points = run_contention_sweep(
            losses=(0.0,), n=25, average_degree=8.0, trials=4,
            crash_fraction=0.2, rng=11,
        )
        # Crashed nodes cut delivery below the no-fault run of the same
        # seed (eligibility shrinks but interference stays).
        assert all(0.0 <= v <= 1.0 for v in points[0].delivery.values())

    def test_exports_via_fault_sweep_writer(self, tmp_path):
        # ContentionPoint is duck-compatible with the fault-sweep schema.
        points = run_contention_sweep(losses=(0.0,), n=25,
                                      average_degree=8.0, trials=2, rng=1)
        out = tmp_path / "contention.json"
        assert fault_sweep_to_json(points, out) == 1
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-fault-sweep"
        assert set(doc["points"][0]["delivery"]) == set(CONTENTION_PROTOCOLS)
