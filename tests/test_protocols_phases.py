"""Tests for the distributed protocol phases (hello, clustering, coverage,
gateway) — individually and against their centralised counterparts."""

import pytest
from hypothesis import given, settings

from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.errors import ProtocolError
from repro.graph.generators import chain_graph, paper_figure3_graph
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.gateway import GatewayDesignationProtocol
from repro.protocols.hello import HelloProtocol
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy

from strategies import connected_graphs


def run_through_clustering(graph):
    net = SimNetwork(graph)
    hello = HelloProtocol(net)
    hello.start()
    net.run_phase()
    clustering = DistributedLowestIdClustering(net)
    clustering.start()
    net.run_phase()
    return net, hello, clustering


class TestHello:
    def test_neighbours_discovered(self, fig3_graph):
        net = SimNetwork(fig3_graph)
        hello = HelloProtocol(net)
        hello.start()
        net.run_phase()
        for v in fig3_graph.nodes():
            assert hello.neighbours_of(v) == set(fig3_graph.neighbours(v))

    def test_one_message_per_node(self, fig3_graph):
        net = SimNetwork(fig3_graph)
        HelloProtocol(net).start()
        # protocol object created above registered handlers; start sends.
        net.run_phase()
        assert net.trace.count_by_type()["Hello"] == fig3_graph.num_nodes


class TestDistributedClustering:
    def test_requires_hello_first(self, fig3_graph):
        net = SimNetwork(fig3_graph)
        with pytest.raises(ProtocolError, match="HELLO"):
            DistributedLowestIdClustering(net)

    def test_figure3_roles(self, fig3_graph):
        _net, _hello, clustering = run_through_clustering(fig3_graph)
        structure = clustering.result()
        assert sorted(structure.clusterheads) == [1, 2, 3, 4]

    def test_one_declaration_per_node(self, fig3_graph):
        net, _hello, _clustering = run_through_clustering(fig3_graph)
        counts = net.trace.count_by_type()
        total = counts.get("ClusterHead", 0) + counts.get("NonClusterHead", 0)
        assert total == fig3_graph.num_nodes

    def test_chain_takes_linear_rounds(self):
        # Monotone ids along a chain: declarations ripple one hop per unit.
        n = 30
        net, _hello, clustering = run_through_clustering(chain_graph(n))
        # Hello finishes at t=1; the last declaration lands near t ~ n.
        assert net.sim.now >= n / 2

    def test_incomplete_phase_raises_on_result(self, fig3_graph):
        net = SimNetwork(fig3_graph)
        HelloProtocol(net).start()
        net.run_phase()
        clustering = DistributedLowestIdClustering(net)
        # start() not called: nobody decided.
        with pytest.raises(ProtocolError, match="never decided"):
            clustering.result()

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_matches_centralised(self, graph):
        _net, _hello, clustering = run_through_clustering(graph)
        assert clustering.result().head_of == lowest_id_clustering(graph).head_of


class TestCoverageExchange:
    @pytest.mark.parametrize("policy", list(CoveragePolicy))
    def test_matches_centralised_on_figure3(self, fig3_graph, policy):
        net, _hello, clustering = run_through_clustering(fig3_graph)
        coverage = CoverageExchangeProtocol(net, policy)
        coverage.start()
        net.run_phase()
        central = compute_all_coverage_sets(clustering.result(), policy)
        distributed = coverage.all_coverage_sets()
        assert set(central) == set(distributed)
        for head in central:
            assert central[head].c2 == distributed[head].c2
            assert central[head].c3 == distributed[head].c3
            assert (central[head].direct_witnesses
                    == distributed[head].direct_witnesses)
            assert (central[head].indirect_witnesses
                    == distributed[head].indirect_witnesses)

    def test_requires_clustering_first(self, fig3_graph):
        net = SimNetwork(fig3_graph)
        HelloProtocol(net)
        with pytest.raises(ProtocolError, match="clustering"):
            CoverageExchangeProtocol(net)

    def test_message_budget(self, fig3_graph):
        # One CH_HOP1 and one CH_HOP2 per non-clusterhead.
        net, _hello, clustering = run_through_clustering(fig3_graph)
        coverage = CoverageExchangeProtocol(net)
        coverage.start()
        net.run_phase()
        counts = net.trace.count_by_type()
        non_heads = fig3_graph.num_nodes - 4
        assert counts["ChHop1"] == non_heads
        assert counts["ChHop2"] == non_heads

    def test_three_hop_messages_not_smaller(self, fig3_graph):
        def volume(policy):
            net, _h, _c = run_through_clustering(paper_figure3_graph())
            cov = CoverageExchangeProtocol(net, policy)
            cov.start()
            net.run_phase()
            return net.trace.volume_by_type().get("ChHop2", 0)

        assert volume(CoveragePolicy.THREE_HOP) >= volume(
            CoveragePolicy.TWO_FIVE_HOP
        )

    def test_coverage_of_non_head_rejected(self, fig3_graph):
        net, _hello, _clustering = run_through_clustering(fig3_graph)
        coverage = CoverageExchangeProtocol(net)
        coverage.start()
        net.run_phase()
        with pytest.raises(ProtocolError, match="not a clusterhead"):
            coverage.coverage_set_of(5)


class TestGatewayDesignation:
    def _build(self, graph, policy=CoveragePolicy.TWO_FIVE_HOP):
        net, _hello, clustering = run_through_clustering(graph)
        coverage = CoverageExchangeProtocol(net, policy)
        coverage.start()
        net.run_phase()
        gateway = GatewayDesignationProtocol(net, coverage)
        gateway.start()
        net.run_phase()
        return net, clustering, gateway

    def test_figure3_gateways(self, fig3_graph):
        _net, _clustering, gateway = self._build(fig3_graph)
        assert gateway.gateway_nodes() == frozenset({5, 6, 7, 8, 9})
        assert gateway.backbone_nodes() == frozenset(range(1, 10))

    def test_designation_complete(self, fig3_graph):
        _net, _clustering, gateway = self._build(fig3_graph)
        gateway.check_designation_complete()

    def test_second_hop_gateways_informed_via_ttl(self, fig3_graph):
        # Node 5 is a second-hop gateway of head 4 (pair (9, 5)); it is two
        # hops from 4, so it can only learn via 9's forwarded GATEWAY.
        _net, _clustering, gateway = self._build(fig3_graph)
        assert 5 in gateway.gateway_nodes()
        assert 4 in gateway.selections
        assert 5 in gateway.selections[4].gateways

    def test_gateway_message_budget(self, fig3_graph):
        net, clustering, _gateway = self._build(fig3_graph)
        counts = net.trace.count_by_type()
        # At least one GATEWAY per head; forwards bounded by selected
        # first-hop gateways per head.
        heads = len(clustering.result().clusterheads)
        assert counts["Gateway"] >= heads
        assert counts["Gateway"] <= 3 * fig3_graph.num_nodes

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs(max_nodes=18))
    def test_matches_centralised_backbone(self, graph):
        from repro.backbone.static_backbone import build_static_backbone

        _net, clustering, gateway = self._build(graph)
        central = build_static_backbone(lowest_id_clustering(graph))
        assert gateway.backbone_nodes() == central.nodes
