"""Tests for the reliable (ARQ) forwarding-tree broadcast."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.reliable import broadcast_reliable_tree
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import BroadcastError, NodeNotFoundError
from repro.graph.generators import random_geometric_network

from strategies import connected_graphs


class TestIdealChannel:
    def test_full_delivery_no_retries(self, fig3_clustering):
        rb = broadcast_reliable_tree(fig3_clustering, 1, rng=0)
        assert rb.result.delivered_to_all(fig3_clustering.graph)
        assert rb.retries == 0
        assert rb.gave_up == frozenset()
        # Every data packet is acknowledged on an ideal channel.
        assert rb.ack_transmissions >= rb.data_transmissions - 1

    def test_member_source_ascends(self, fig3_clustering):
        rb = broadcast_reliable_tree(fig3_clustering, 10, rng=0)
        assert rb.result.delivered_to_all(fig3_clustering.graph)
        assert 10 in rb.result.forward_nodes

    def test_unknown_source(self, fig3_clustering):
        with pytest.raises(NodeNotFoundError):
            broadcast_reliable_tree(fig3_clustering, 77)

    def test_bad_loss_rejected(self, fig3_clustering):
        with pytest.raises(BroadcastError):
            broadcast_reliable_tree(fig3_clustering, 1, loss_probability=1.5)
        with pytest.raises(BroadcastError):
            broadcast_reliable_tree(fig3_clustering, 1, loss_probability=-0.1)

    def test_total_loss_accepted_like_the_medium(self, fig3_clustering):
        # Regression: the validation used to reject 1.0 while the medium's
        # knob accepts the whole closed interval [0, 1].  At total loss
        # every hop exhausts its budget and gives up; nobody but the
        # source receives.
        rb = broadcast_reliable_tree(
            fig3_clustering, 1, loss_probability=1.0, max_retries=2, rng=0
        )
        assert rb.result.received == frozenset({1})
        assert rb.gave_up

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery_any_topology(self, graph):
        cs = lowest_id_clustering(graph)
        rb = broadcast_reliable_tree(cs, 0, rng=1)
        assert rb.result.delivered_to_all(graph)


class TestLossyChannel:
    @pytest.mark.parametrize("loss", [0.1, 0.3, 0.5])
    def test_full_delivery_under_loss(self, loss):
        rng = np.random.default_rng(int(loss * 100))
        for _ in range(5):
            net = random_geometric_network(30, 10.0, rng=rng)
            cs = lowest_id_clustering(net.graph)
            rb = broadcast_reliable_tree(
                cs, 0, loss_probability=loss, rng=rng
            )
            assert rb.result.delivered_to_all(net.graph)
            assert rb.gave_up == frozenset()

    def test_retransmissions_grow_with_loss(self):
        def mean_data(loss):
            rng = np.random.default_rng(9)
            totals = []
            for _ in range(10):
                net = random_geometric_network(30, 10.0, rng=rng)
                cs = lowest_id_clustering(net.graph)
                rb = broadcast_reliable_tree(
                    cs, 0, loss_probability=loss, rng=rng
                )
                totals.append(rb.data_transmissions)
            return float(np.mean(totals))

        assert mean_data(0.0) < mean_data(0.2) < mean_data(0.4)

    def test_retry_budget_exhaustion_recorded(self):
        net = random_geometric_network(20, 8.0, rng=3)
        cs = lowest_id_clustering(net.graph)
        rb = broadcast_reliable_tree(
            cs, 0, loss_probability=0.9, max_retries=1, rng=4
        )
        # With 90% loss and 1 retry, some hop virtually always fails.
        assert rb.gave_up
        assert not rb.result.delivered_to_all(net.graph)

    def test_deterministic_given_seed(self):
        net = random_geometric_network(25, 10.0, rng=5)
        cs = lowest_id_clustering(net.graph)
        a = broadcast_reliable_tree(cs, 0, loss_probability=0.3, rng=6)
        b = broadcast_reliable_tree(cs, 0, loss_probability=0.3, rng=6)
        assert a.data_transmissions == b.data_transmissions
        assert a.result.received == b.result.received

    def test_overhead_factor(self):
        net = random_geometric_network(25, 10.0, rng=7)
        cs = lowest_id_clustering(net.graph)
        rb = broadcast_reliable_tree(cs, 0, loss_probability=0.2, rng=8)
        assert rb.overhead_factor > 1.0
