"""Tests for toroidal (border-free) unit disk graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.geometry.area import Area
from repro.geometry.disk import expected_degree
from repro.graph.build import unit_disk_graph
from repro.graph.generators import random_geometric_network
from repro.graph.network import Network
from repro.graph.properties import degree_stats


class TestTorusBuild:
    def test_wraps_horizontally(self):
        area = Area(10, 10)
        pts = np.array([[0.5, 5.0], [9.5, 5.0]])
        planar = unit_disk_graph(pts, 2.0)
        wrapped = unit_disk_graph(pts, 2.0, torus=area)
        assert not planar.has_edge(0, 1)
        assert wrapped.has_edge(0, 1)  # distance 1 around the seam

    def test_wraps_vertically(self):
        area = Area(10, 10)
        pts = np.array([[5.0, 0.2], [5.0, 9.8]])
        assert unit_disk_graph(pts, 1.0, torus=area).has_edge(0, 1)

    def test_wraps_diagonally(self):
        area = Area(10, 10)
        pts = np.array([[0.3, 0.3], [9.7, 9.7]])
        # Wrapped displacement is (0.6, 0.6), length ~0.85.
        assert unit_disk_graph(pts, 1.0, torus=area).has_edge(0, 1)

    def test_interior_pairs_unchanged(self):
        area = Area(100, 100)
        rng = np.random.default_rng(0)
        # Keep everything at least r away from the border.
        pts = 20.0 + rng.random((40, 2)) * 60.0
        planar = unit_disk_graph(pts, 10.0)
        wrapped = unit_disk_graph(pts, 10.0, torus=area)
        assert planar == wrapped

    def test_grid_method_rejected(self):
        with pytest.raises(GeometryError, match="dense"):
            unit_disk_graph(np.zeros((3, 2)), 1.0, method="grid",
                            torus=Area(10, 10))

    def test_strict_inequality_still_applies(self):
        area = Area(10, 10)
        pts = np.array([[0.0, 5.0], [9.0, 5.0]])  # wrapped distance exactly 1
        assert not unit_disk_graph(pts, 1.0, torus=area).has_edge(0, 1)


class TestTorusNetwork:
    def test_moved_keeps_torus(self):
        net = random_geometric_network(20, 8.0, rng=1, torus=True)
        assert net.torus
        moved = net.moved(net.position_array())
        assert moved.torus
        assert moved.graph == net.graph

    def test_torus_degree_matches_analytic_formula(self):
        # The whole point: without borders the calibration is exact.
        n, d = 150, 10.0
        rng = np.random.default_rng(2)
        degrees_torus, degrees_plane = [], []
        for _ in range(15):
            t = random_geometric_network(n, d, rng=rng, torus=True)
            p = random_geometric_network(n, d, rng=rng, torus=False)
            degrees_torus.append(degree_stats(t.graph).mean)
            degrees_plane.append(degree_stats(p.graph).mean)
        mean_torus = float(np.mean(degrees_torus))
        mean_plane = float(np.mean(degrees_plane))
        assert mean_torus == pytest.approx(d, rel=0.06)
        # Border truncation depresses the planar degree below the torus one.
        assert mean_plane < mean_torus

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_torus_is_supergraph_of_plane(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.random((25, 2)) * 50.0
        area = Area(50, 50)
        planar = unit_disk_graph(pts, 8.0)
        wrapped = unit_disk_graph(pts, 8.0, torus=area)
        for u, v in planar.edges():
            assert wrapped.has_edge(u, v)


class TestTorusPipeline:
    """The whole pipeline runs unchanged on border-free topologies."""

    def test_backbone_and_broadcasts_on_torus(self):
        from repro.backbone.static_backbone import build_static_backbone
        from repro.backbone.verify import verify_backbone
        from repro.broadcast.sd_cds import broadcast_sd
        from repro.broadcast.si_cds import broadcast_si
        from repro.cluster.lowest_id import lowest_id_clustering
        from repro.routing.cluster_routing import backbone_route

        net = random_geometric_network(50, 10.0, rng=11, torus=True)
        clustering = lowest_id_clustering(net.graph)
        backbone = build_static_backbone(clustering)
        verify_backbone(backbone)
        si = broadcast_si(net.graph, backbone, 0)
        dyn = broadcast_sd(clustering, 0)
        assert si.delivered_to_all(net.graph)
        assert dyn.result.delivered_to_all(net.graph)
        route = backbone_route(backbone, 0, net.graph.nodes()[-1])
        for a, b in zip(route, route[1:]):
            assert net.graph.has_edge(a, b)
