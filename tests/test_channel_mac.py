"""Tests for the contention MACs: slotted CSMA backoff and TDMA frames."""

import pytest

from repro.channel import SlottedCsmaMac, TdmaMac
from repro.errors import SimulationError
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.channel.model import IdealChannel
from repro.sim.network import SimNetwork


def bind(mac, graph=None):
    """A minimal medium for the MAC to live on (latency 1)."""
    graph = graph if graph is not None else Graph(edges=[(0, 1), (1, 2)])
    net = SimNetwork(graph, channel=IdealChannel(mac=mac))
    return net


class TestValidation:
    def test_csma_parameters(self):
        with pytest.raises(SimulationError):
            SlottedCsmaMac(rng=0, cw_min=0)
        with pytest.raises(SimulationError):
            SlottedCsmaMac(rng=0, cw_min=8, cw_max=4)
        with pytest.raises(SimulationError):
            SlottedCsmaMac(rng=0, max_attempts=0)

    def test_tdma_frame(self):
        with pytest.raises(SimulationError):
            TdmaMac(frame=0)


class TestTdma:
    def test_own_slot_airs_instantly(self):
        mac = TdmaMac(frame=4)
        bind(mac)
        # At t=0, slot 0 belongs to node 0 (0 mod 4).
        assert mac.air_delay(0) == 0.0
        assert mac.deferrals == 0

    def test_foreign_slot_waits_for_own(self):
        mac = TdmaMac(frame=4)
        bind(mac)
        assert mac.air_delay(1) == 1.0  # node 1 owns slot 1
        assert mac.air_delay(2) == 2.0
        assert mac.deferrals == 2

    def test_frame_one_is_the_instant_mac(self):
        mac = TdmaMac(frame=1)
        bind(mac)
        for sender in (0, 1, 2):
            assert mac.air_delay(sender) == 0.0
        assert mac.deferrals == 0

    def test_no_randomness(self):
        graph = random_geometric_network(20, 6.0, rng=4).graph

        def run():
            net = SimNetwork(
                graph, channel=IdealChannel(mac=TdmaMac(frame=6))
            )
            p = DistributedSIBroadcast(net, graph.nodes())
            p.start(0)
            net.run_phase()
            return p.result(), net.trace.entries

        (r1, t1), (r2, t2) = run(), run()
        assert t1 == t2
        assert r1.reception_time == r2.reception_time


class TestCsma:
    def test_idle_slot_taken_immediately(self):
        # cw_min=1 forces a zero backoff draw: the next boundary is free.
        mac = SlottedCsmaMac(rng=0, cw_min=1)
        bind(mac)
        assert mac.air_delay(0) == 0.0
        assert mac.deferrals == 0

    def test_neighbour_reservation_senses_busy(self):
        mac = SlottedCsmaMac(rng=0, cw_min=1, cw_max=1)
        bind(mac)
        assert mac.air_delay(0) == 0.0  # reserves slot 0
        # Node 1 neighbours node 0, must skip the taken slot.
        delay = mac.air_delay(1)
        assert delay is not None and delay >= 1.0
        assert mac.deferrals == 1

    def test_non_neighbour_reuses_the_slot(self):
        # 0-1 and 2 isolated-ish: 2 does not hear 0's reservation.
        graph = Graph(edges=[(0, 1), (2, 3)])
        mac = SlottedCsmaMac(rng=0, cw_min=1, cw_max=1)
        bind(mac, graph)
        assert mac.air_delay(0) == 0.0
        assert mac.air_delay(2) == 0.0  # spatial reuse

    def test_attempt_budget_drops(self):
        mac = SlottedCsmaMac(rng=0, cw_min=1, cw_max=1, max_attempts=1)
        bind(mac)
        assert mac.air_delay(0) == 0.0
        assert mac.air_delay(1) is None  # only attempt sensed busy
        assert mac.drops == 1

    def test_seeded_backoff_is_deterministic(self):
        graph = random_geometric_network(25, 8.0, rng=6).graph

        def run(seed):
            net = SimNetwork(
                graph, channel=IdealChannel(mac=SlottedCsmaMac(rng=seed))
            )
            p = DistributedSIBroadcast(net, graph.nodes())
            p.start(0)
            net.run_phase()
            return net.trace.entries

        assert run(42) == run(42)
        assert run(42) != run(43)  # the seed actually matters

    def test_deliveries_still_complete(self):
        # A pure-MAC run (ideal PHY) only reorders airs, never loses data:
        # flooding must still reach everyone.
        graph = random_geometric_network(30, 8.0, rng=7).graph
        net = SimNetwork(
            graph, channel=IdealChannel(mac=SlottedCsmaMac(rng=1))
        )
        p = DistributedSIBroadcast(net, graph.nodes())
        p.start(0)
        net.run_phase()
        result = p.result()
        assert len(result.received) == graph.num_nodes
