"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_configuration_error_is_value_error(self):
        assert issubclass(errors.ConfigurationError, ValueError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(errors.NodeNotFoundError, KeyError)

    def test_node_not_found_carries_node(self):
        err = errors.NodeNotFoundError(42)
        assert err.node == 42
        assert "42" in str(err)

    def test_protocol_error_is_simulation_error(self):
        assert issubclass(errors.ProtocolError, errors.SimulationError)

    def test_sample_budget_error_fields(self):
        err = errors.SampleBudgetExceededError(
            trials=100, half_width_ratio=0.2, target=0.05
        )
        assert err.trials == 100
        assert err.half_width_ratio == 0.2
        assert err.target == 0.05
        assert "100 trials" in str(err)

    def test_catching_base_catches_subclasses(self):
        with pytest.raises(errors.ReproError):
            raise errors.BroadcastError("x")
