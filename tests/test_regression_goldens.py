"""Golden regression values.

Every algorithm in this library is deterministic given a seed, so exact
output values can be pinned.  These goldens catch *any* behavioural drift —
a changed tie-break, a reordered iteration, an altered calibration — that
the property tests (which only check invariants) would let through.

If a change legitimately alters these numbers (e.g. an intentional
heuristic improvement), update the goldens in the same commit and say why
in its message.
"""

import pytest

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.mpr import broadcast_mpr
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.types import CoveragePolicy, PruningLevel


@pytest.fixture(scope="module")
def net():
    """The pinned reference network: n=60, d=10, seed 2003."""
    return random_geometric_network(60, 10.0, rng=2003)


@pytest.fixture(scope="module")
def clustering(net):
    return lowest_id_clustering(net.graph)


class TestNetworkGoldens:
    def test_topology(self, net):
        assert net.num_nodes == 60
        assert net.graph.num_edges == 209
        assert net.radius == pytest.approx(23.227, abs=1e-3)

    def test_clustering(self, clustering):
        assert clustering.sorted_heads() == [0, 1, 2, 3, 7, 8, 10, 15, 17, 24, 32, 55]


class TestStructureGoldens:
    def test_static_backbone_sizes(self, clustering):
        assert build_static_backbone(
            clustering, CoveragePolicy.TWO_FIVE_HOP
        ).size == 24
        assert build_static_backbone(
            clustering, CoveragePolicy.THREE_HOP
        ).size == 27

    def test_mo_cds_size(self, clustering):
        assert build_mo_cds(clustering).size == 30


class TestBroadcastGoldens:
    def test_flooding(self, net):
        r = blind_flooding(net.graph, 0)
        assert r.num_forward_nodes == 60
        assert r.latency == 7

    def test_static_broadcast(self, net, clustering):
        bb = build_static_backbone(clustering)
        r = broadcast_si(net.graph, bb, 0)
        assert r.num_forward_nodes == 24  # source 0 is itself a head

    def test_dynamic_broadcast_all_prunings(self, clustering):
        # Per-sample pruning effects are noisy (FULL can even exceed NONE
        # on one draw, as here); the *averages* in Figure 8 favour FULL.
        expected = {
            PruningLevel.NONE: 24,
            PruningLevel.BASIC: 25,
            PruningLevel.FULL: 25,
        }
        for pruning, count in expected.items():
            dyn = broadcast_sd(clustering, 0, pruning=pruning)
            assert dyn.result.num_forward_nodes == count, pruning

    def test_mpr_broadcast(self, net):
        assert broadcast_mpr(net.graph, 0).num_forward_nodes == 21
