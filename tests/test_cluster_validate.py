"""Tests for cluster-structure validation."""

import pytest

from repro.cluster.state import ClusterStructure
from repro.cluster.validate import validate_cluster_structure
from repro.errors import ClusteringError
from repro.graph.adjacency import Graph


def structure(edges, head_of):
    return ClusterStructure(graph=Graph(edges=edges), head_of=head_of)


class TestValidate:
    def test_valid_structure_passes(self):
        s = structure([(1, 2), (2, 3)], {1: 1, 2: 1, 3: 3})
        validate_cluster_structure(s, lowest_id=True)

    def test_adjacent_heads_rejected(self):
        # Both 1 and 2 claim headship while adjacent.
        s = structure([(1, 2), (1, 3), (2, 4)], {1: 1, 2: 2, 3: 1, 4: 2})
        with pytest.raises(ClusteringError, match="independent"):
            validate_cluster_structure(s)

    def test_non_dominating_heads_impossible_via_type(self):
        # A structure where some node has no head at all cannot even be
        # constructed (head_of is total), so domination violations only
        # arise through non-adjacent membership, which the type rejects.
        with pytest.raises(ClusteringError):
            structure([(1, 2), (2, 3)], {1: 1, 2: 1, 3: 1})

    def test_lowest_id_violation_head(self):
        # 2 heads a cluster although neighbour 1 also heads one: fine for a
        # generic clustering only if non-adjacent; make them non-adjacent but
        # give 3 the wrong head.
        s = structure([(1, 3), (2, 3)], {1: 1, 2: 2, 3: 2})
        validate_cluster_structure(s)  # generic invariants hold
        with pytest.raises(ClusteringError, match="smallest neighbouring head"):
            validate_cluster_structure(s, lowest_id=True)

    def test_lowest_id_violation_wrong_role(self):
        # 2 should have joined head 1 (they are adjacent), not lead.
        s = structure([(1, 2), (2, 3), (1, 4), (3, 4)],
                      {1: 1, 2: 2, 3: 2, 4: 1})
        with pytest.raises(ClusteringError, match="smaller-id head neighbour"):
            validate_cluster_structure(s, lowest_id=True)
