"""Tests for multipoint-relay broadcasting."""

import pytest
from hypothesis import given, settings

from repro.broadcast.flooding import blind_flooding
from repro.broadcast.mpr import all_mpr_sets, broadcast_mpr, mpr_set
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, grid_graph, star_graph
from repro.graph.traversal import nodes_at_distance

from strategies import connected_graphs, geometric_networks


class TestMprSet:
    def test_star_hub_needs_no_relays(self):
        assert mpr_set(star_graph(5), 0) == frozenset()

    def test_leaf_selects_hub(self):
        assert mpr_set(star_graph(5), 1) == frozenset({0})

    def test_chain_interior(self):
        g = chain_graph(5)
        assert mpr_set(g, 2) == frozenset({1, 3})

    def test_covers_strict_two_hop(self):
        g = grid_graph(4, 4)
        for v in g.nodes():
            covered = set()
            for u in mpr_set(g, v):
                covered |= g.neighbours_view(u)
            two_hop = nodes_at_distance(g, v, 2)
            assert two_hop <= covered

    def test_sole_provider_mandatory(self):
        # 0-1-2: 1 is the only route from 0 to 2.
        g = chain_graph(3)
        assert 1 in mpr_set(g, 0)

    def test_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            mpr_set(star_graph(2), 77)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_always_covers(self, graph):
        for v in graph.nodes():
            covered = set()
            for u in mpr_set(graph, v):
                covered |= graph.neighbours_view(u)
            assert nodes_at_distance(graph, v, 2) <= covered


class TestMprBroadcast:
    def test_star(self):
        r = broadcast_mpr(star_graph(6), 0)
        assert r.num_forward_nodes == 1
        assert r.delivered_to_all(star_graph(6))

    def test_precomputed_sets(self):
        g = grid_graph(3, 3)
        sets = all_mpr_sets(g)
        r = broadcast_mpr(g, 4, mpr_sets=sets)
        assert r.delivered_to_all(g)

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            broadcast_mpr(star_graph(3), 9)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery(self, graph):
        r = broadcast_mpr(graph, 0)
        assert r.delivered_to_all(graph)

    @settings(max_examples=12, deadline=None)
    @given(net=geometric_networks(min_nodes=15))
    def test_beats_flooding_in_density(self, net):
        mpr = broadcast_mpr(net.graph, 0)
        flood = blind_flooding(net.graph, 0)
        assert mpr.num_forward_nodes <= flood.num_forward_nodes
        assert mpr.delivered_to_all(net.graph)
