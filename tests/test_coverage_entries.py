"""Tests for the CoverageSet value object."""

import pytest

from repro.coverage.entries import CoverageSet, freeze_witnesses
from repro.errors import CoverageError
from repro.types import CoveragePolicy


def make_coverage(head=1, c2=(2,), c3=(3,), direct=None, indirect=None):
    direct = direct if direct is not None else {2: frozenset({10})}
    indirect = indirect if indirect is not None else {3: frozenset({(10, 11)})}
    return CoverageSet(
        head=head,
        policy=CoveragePolicy.TWO_FIVE_HOP,
        c2=frozenset(c2),
        c3=frozenset(c3),
        direct_witnesses=direct,
        indirect_witnesses=indirect,
    )


class TestInvariants:
    def test_valid_construction(self):
        cov = make_coverage()
        assert cov.all_targets == frozenset({2, 3})
        assert cov.size == 2

    def test_overlap_rejected(self):
        with pytest.raises(CoverageError, match="overlap"):
            make_coverage(c2=(2,), c3=(2,),
                          indirect={2: frozenset({(10, 11)})})

    def test_self_in_coverage_rejected(self):
        with pytest.raises(CoverageError):
            make_coverage(head=2)

    def test_witness_key_mismatch_rejected(self):
        with pytest.raises(CoverageError):
            make_coverage(direct={})

    def test_empty_witness_set_rejected(self):
        with pytest.raises(CoverageError, match="no witness"):
            make_coverage(direct={2: frozenset()})
        with pytest.raises(CoverageError, match="no witness"):
            make_coverage(indirect={3: frozenset()})


class TestMaintenanceCost:
    def test_counts_targets_and_witnesses(self):
        cov = make_coverage(
            direct={2: frozenset({10, 12})},
            indirect={3: frozenset({(10, 11), (12, 13)})},
        )
        # 2 targets + 2 direct witnesses + 2 pairs.
        assert cov.maintenance_cost() == 6


class TestRestricted:
    def test_restriction_drops_targets_and_witnesses(self):
        cov = make_coverage()
        sub = cov.restricted(frozenset({3}))
        assert sub.c2 == frozenset()
        assert sub.c3 == frozenset({3})
        assert 2 not in sub.direct_witnesses

    def test_restriction_to_empty(self):
        sub = make_coverage().restricted(frozenset())
        assert sub.size == 0

    def test_restriction_ignores_foreign_targets(self):
        sub = make_coverage().restricted(frozenset({2, 99}))
        assert sub.all_targets == frozenset({2})


class TestFreezeWitnesses:
    def test_freezes_both(self):
        d, i = freeze_witnesses({1: {5}}, {2: {(5, 6)}})
        assert d == {1: frozenset({5})}
        assert i == {2: frozenset({(5, 6)})}
