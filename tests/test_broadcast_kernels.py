"""Equivalence properties for the array broadcast kernels.

The vectorised delivery kernels (:mod:`repro.broadcast.kernels`) are a
performance substrate, not a second model: on every input they must
reproduce the centralized reference algorithms exactly, and under loss
they must consume the *same RNG stream in the same order* as the event
engine, so a figure point computes identical numbers whichever route ran.
Three layers of evidence here:

* Hypothesis properties against the centralized references on arbitrary
  raw placements — disconnected graphs, isolated nodes, torus wrap and
  permuted non-contiguous ids included;
* engine replays at loss 0 / 0.2 / 1.0 with a shared seed, checking
  results *and* the generators' final positions (stream-consumption
  order is part of the contract);
* the batching seams: a union-stacked batch must equal per-trial runs,
  and a batch wave through the execution backend must equal per-item
  calls bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast import kernels
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.exec.backends import SerialBackend, TrialJob
from repro.exec.scenarios import connected_scenario
from repro.exec.spec import TrialSpec
from repro.geometry.area import Area
from repro.geometry.placement import uniform_placement
from repro.graph.build import unit_disk_graph
from repro.protocols.broadcast import (
    DistributedSDBroadcast,
    DistributedSIBroadcast,
)
from repro.protocols.clustering import DistributedLowestIdClustering
from repro.protocols.coverage import CoverageExchangeProtocol
from repro.protocols.hello import HelloProtocol
from repro.sim.network import SimNetwork
from repro.types import CoveragePolicy, PruningLevel


@st.composite
def placements(draw):
    """Raw placements: arbitrary density, optional torus and permuted ids.

    No connectivity rejection — sparse draws carry isolated nodes and
    multi-component graphs, which the kernels must handle exactly like
    the references (unreached nodes simply never appear in the result).
    """
    n = draw(st.integers(1, 55))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    side = draw(st.sampled_from([60.0, 120.0, 250.0]))
    radius = draw(st.sampled_from([15.0, 35.0, 70.0]))
    area = Area(side, side)
    positions = uniform_placement(n, area, rng=rng)
    torus = area if draw(st.booleans()) else None
    if draw(st.booleans()):
        ids = [int(v) for v in rng.permutation(10 * n)[:n]]
    else:
        ids = None
    source_pick = draw(st.integers(0, n - 1))
    return positions, radius, ids, torus, source_pick


def _assets_for(scenario):
    positions, radius, ids, torus, source_pick = scenario
    graph = unit_disk_graph(positions, radius, ids=ids, torus=torus)
    structure = lowest_id_clustering(graph)
    assets = kernels.KernelAssets(structure)
    source = sorted(graph.nodes())[source_pick]
    return graph, structure, assets, source


@settings(max_examples=50, deadline=None)
@given(placements())
def test_flooding_matches_reference(scenario):
    graph, _structure, assets, source = _assets_for(scenario)
    assert kernels.flooding_result(assets.csr, source) == blind_flooding(
        graph, source
    )


@settings(max_examples=40, deadline=None)
@given(placements())
def test_si_matches_reference_backbones(scenario):
    graph, structure, assets, source = _assets_for(scenario)
    for policy in CoveragePolicy:
        backbone = build_static_backbone(structure, policy=policy)
        got = kernels.si_result(
            assets.csr, assets.static_rows(policy), source,
            algorithm=f"si-cds[{backbone.algorithm}]",
        )
        assert got == broadcast_si(graph, backbone, source)
    mo = build_mo_cds(structure)
    got = kernels.si_result(
        assets.csr, assets.mo_rows(), source,
        algorithm=f"si-cds[{mo.algorithm}]",
    )
    assert got == broadcast_si(graph, mo, source)


@settings(max_examples=25, deadline=None)
@given(placements())
def test_sd_matches_reference_at_every_pruning_level(scenario):
    graph, structure, assets, source = _assets_for(scenario)
    for policy in CoveragePolicy:
        for pruning in PruningLevel:
            ref = broadcast_sd(
                structure, source, policy=policy, pruning=pruning
            )
            got = kernels.sd_result(
                assets, source, policy=policy, pruning=pruning
            )
            assert got.result == ref.result
            assert got.forward_sets == dict(ref.forward_sets)
            assert got.pruned_targets == dict(ref.pruned_targets)


# ---------------------------------------------------------------------------
# Kernel vs event engine under loss: same results, same RNG consumption.
# ---------------------------------------------------------------------------


def _engine_network(graph, policy, loss, rng):
    """A pre-clustered engine network, lossy only for the data phase."""
    net = SimNetwork(graph)
    hello = HelloProtocol(net)
    hello.start()
    net.run_phase()
    clustering = DistributedLowestIdClustering(net)
    clustering.start()
    net.run_phase()
    coverage = CoverageExchangeProtocol(net, policy)
    coverage.start()
    net.run_phase()
    if loss > 0:
        net.medium.set_loss(loss, rng)
    return net, coverage


def _normalised(times, source):
    # Engine reception times count from the control phases; kernel times
    # count from the broadcast start.  Source-relative offsets compare.
    origin = times[source]
    return {node: t - origin for node, t in times.items()}


@pytest.mark.parametrize("loss", [0.0, 0.2, 1.0])
@pytest.mark.parametrize("seed", [0, 1])
def test_kernels_match_event_engine(seed, loss):
    scenario = connected_scenario(60, 8.0, root=1234, index=seed)
    graph = scenario.network.graph
    structure = lowest_id_clustering(graph)
    assets = kernels.KernelAssets(structure)
    source = int(np.random.default_rng(seed).choice(sorted(graph.nodes())))
    for policy in CoveragePolicy:
        engine_rng = np.random.default_rng(seed * 7 + 1)
        kernel_rng = np.random.default_rng(seed * 7 + 1)
        net, _coverage = _engine_network(graph, policy, loss, engine_rng)
        backbone = build_static_backbone(structure, policy=policy)
        si = DistributedSIBroadcast(net, backbone.nodes)
        si.start(source)
        net.run_phase()
        ref = si.result()
        got = kernels.si_result(
            assets.csr, assets.static_rows(policy), source,
            loss=loss, rng=kernel_rng if loss > 0 else None,
        )
        assert got.received == ref.received
        assert got.forward_nodes == ref.forward_nodes
        assert got.transmissions == ref.transmissions
        assert _normalised(got.reception_time, source) == _normalised(
            dict(ref.reception_time), source
        )
        if loss > 0:
            # Both paths must leave their generator at the same position:
            # the kernels draw one Bernoulli per neighbour in the exact
            # delivery order the medium uses.
            assert engine_rng.random() == kernel_rng.random()

        for pruning in PruningLevel:
            engine_rng = np.random.default_rng(seed * 7 + 3)
            kernel_rng = np.random.default_rng(seed * 7 + 3)
            net, coverage = _engine_network(graph, policy, loss, engine_rng)
            sd = DistributedSDBroadcast(net, coverage, pruning)
            sd.start(source)
            net.run_phase()
            ref = sd.result()
            got = kernels.sd_result(
                assets, source, policy=policy, pruning=pruning,
                loss=loss, rng=kernel_rng if loss > 0 else None,
            )
            assert got.result.received == ref.received
            assert got.result.forward_nodes == ref.forward_nodes
            assert got.result.transmissions == ref.transmissions
            assert _normalised(
                got.result.reception_time, source
            ) == _normalised(dict(ref.reception_time), source)
            if loss > 0:
                assert engine_rng.random() == kernel_rng.random()


# ---------------------------------------------------------------------------
# Batching seams: union stacking and the backend batch wave.
# ---------------------------------------------------------------------------


class TestTrialStacking:
    B = 5

    @pytest.fixture(scope="class")
    def stacked(self):
        scenarios = [
            connected_scenario(100, 9.0, root=42, index=b)
            for b in range(self.B)
        ]
        assets = [kernels.scenario_assets(s) for s in scenarios]
        sources = [
            int(np.random.default_rng(b).choice(s.network.graph.nodes()))
            for b, s in enumerate(scenarios)
        ]
        stack = kernels.stack_trials(
            [a.csr for a in assets], [a.head_row for a in assets]
        )
        src_rows = np.array(
            [a.source_row(src) + stack.offsets[b]
             for b, (a, src) in enumerate(zip(assets, sources))],
            dtype=np.int64,
        )
        return stack, assets, sources, src_rows

    def test_flooding_blocks_equal_per_trial_runs(self, stacked):
        stack, assets, sources, src_rows = stacked
        time_u, fwd_u = kernels.flooding_rows(stack.csr, src_rows)
        for b, (a, src) in enumerate(zip(assets, sources)):
            lo, hi = stack.offsets[b], stack.offsets[b + 1]
            t1, f1 = kernels.flooding_rows(
                a.csr, np.array([a.source_row(src)])
            )
            assert np.array_equal(time_u[lo:hi], t1)
            assert np.array_equal(fwd_u[lo:hi], f1)

    def test_si_blocks_equal_per_trial_runs(self, stacked):
        stack, assets, sources, src_rows = stacked
        for policy in CoveragePolicy:
            mask = kernels.stack_mask(
                stack, [a.static_rows(policy) for a in assets]
            )
            time_u, fwd_u = kernels.si_rows(stack.csr, mask, src_rows)
            for b, (a, src) in enumerate(zip(assets, sources)):
                lo, hi = stack.offsets[b], stack.offsets[b + 1]
                single = np.zeros(a.csr.num_nodes, dtype=bool)
                single[a.static_rows(policy)] = True
                t1, f1 = kernels.si_rows(
                    a.csr, single, np.array([a.source_row(src)])
                )
                assert np.array_equal(time_u[lo:hi], t1)
                assert np.array_equal(fwd_u[lo:hi], f1)

    def test_sd_blocks_equal_per_trial_runs(self, stacked):
        stack, assets, sources, src_rows = stacked
        for policy in CoveragePolicy:
            cov = kernels.stack_coverage(
                stack, [a.coverage(policy) for a in assets]
            )
            for pruning in PruningLevel:
                union = kernels.sd_rows(
                    stack.csr, stack.head_row, cov, src_rows, pruning=pruning
                )
                for b, (a, src) in enumerate(zip(assets, sources)):
                    lo, hi = stack.offsets[b], stack.offsets[b + 1]
                    single = kernels.sd_rows(
                        a.csr, a.head_row, a.coverage(policy),
                        np.array([a.source_row(src)]), pruning=pruning,
                        cov_keys=a.coverage_keys(policy),
                    )
                    assert np.array_equal(union.time[lo:hi], single.time)
                    assert np.array_equal(
                        union.forwarded[lo:hi], single.forwarded
                    )
                    assert np.array_equal(union.tx_row[lo:hi], single.tx_row)

    def test_sd_collect_flag_only_drops_bookkeeping(self, stacked):
        stack, _assets, _sources, src_rows = stacked
        cov = kernels.stack_coverage(
            stack,
            [a.coverage(CoveragePolicy.TWO_FIVE_HOP) for a in _assets],
        )
        full = kernels.sd_rows(stack.csr, stack.head_row, cov, src_rows)
        lean = kernels.sd_rows(
            stack.csr, stack.head_row, cov, src_rows, collect=False
        )
        assert np.array_equal(full.time, lean.time)
        assert np.array_equal(full.forwarded, lean.forwarded)
        assert np.array_equal(full.tx_row, lean.tx_row)
        assert lean.done_heads.shape[0] == 0


def test_batch_wave_is_bit_identical_to_per_item_calls():
    # n=300 is past KERNEL_CUTOVER, so the resolved trial grows a
    # run_batch attribute and the serial backend routes the wave through
    # the stacked kernels; the results must be indistinguishable.
    spec = TrialSpec.create(
        "repro.workload.experiments:make_figure_trial",
        metrics="flooding", n=300, degree=10.0,
        width=float(Area.paper().width), height=float(Area.paper().height),
        scenario_root=4242,
    )
    job = TrialJob(spec=spec)
    assert job.batch_fn() is not None
    seeds = np.random.SeedSequence(7).spawn(6)
    wave = SerialBackend().run_wave(job, 0, seeds)
    per_item = [
        job.call(k, np.random.default_rng(seq))
        for k, seq in enumerate(seeds)
    ]
    assert wave == per_item
