"""Tests for the cluster graph and its strong-connectivity theorem."""

from hypothesis import given, settings

from repro.cluster.cluster_graph import (
    build_cluster_graph,
    cluster_graph_is_strongly_connected,
)
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.types import CoveragePolicy

from strategies import connected_graphs, geometric_networks


class TestFigure4:
    """The paper's Figure 4: cluster graphs of the Figure 3 network."""

    def test_two_five_hop_edges(self, fig3_clustering):
        succ = build_cluster_graph(fig3_clustering, CoveragePolicy.TWO_FIVE_HOP)
        assert succ == {
            1: {2, 3},
            2: {1, 3},
            3: {1, 2, 4},
            4: {1, 3},
        }

    def test_two_five_hop_is_asymmetric(self, fig3_clustering):
        # Figure 4(a): (4, 1) exists but (1, 4) does not.
        succ = build_cluster_graph(fig3_clustering, CoveragePolicy.TWO_FIVE_HOP)
        assert 1 in succ[4]
        assert 4 not in succ[1]

    def test_three_hop_edges_symmetric(self, fig3_clustering):
        # Figure 4(b): with the 3-hop coverage set (1, 4) also exists.
        succ = build_cluster_graph(fig3_clustering, CoveragePolicy.THREE_HOP)
        assert 4 in succ[1]
        for v, targets in succ.items():
            for w in targets:
                assert v in succ[w], f"({v},{w}) present but not ({w},{v})"


class TestStrongConnectivity:
    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_wu_lou_theorem_two_five_hop(self, graph):
        cs = lowest_id_clustering(graph)
        assert cluster_graph_is_strongly_connected(cs, CoveragePolicy.TWO_FIVE_HOP)

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_wu_lou_theorem_three_hop(self, graph):
        cs = lowest_id_clustering(graph)
        assert cluster_graph_is_strongly_connected(cs, CoveragePolicy.THREE_HOP)

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks(max_nodes=30))
    def test_on_geometric_networks(self, net):
        cs = lowest_id_clustering(net.graph)
        assert cluster_graph_is_strongly_connected(cs, CoveragePolicy.TWO_FIVE_HOP)

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs())
    def test_three_hop_supergraph_of_two_five(self, graph):
        cs = lowest_id_clustering(graph)
        s25 = build_cluster_graph(cs, CoveragePolicy.TWO_FIVE_HOP)
        s3 = build_cluster_graph(cs, CoveragePolicy.THREE_HOP)
        for v in s25:
            assert s25[v] <= s3[v]

    def test_reuses_precomputed_coverage(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering,
                                         CoveragePolicy.TWO_FIVE_HOP)
        succ = build_cluster_graph(
            fig3_clustering, CoveragePolicy.TWO_FIVE_HOP, coverage_sets=covs
        )
        assert succ[3] == {1, 2, 4}
