"""Stateful property test: incremental clustering under arbitrary histories.

Hypothesis drives a :class:`RuleBasedStateMachine` that interleaves edge
insertions and removals in any order it likes; after *every* step the
incremental structure must equal a from-scratch recomputation and satisfy
all clustering invariants.  This exercises orderings (cascades, re-adds,
island formation) far beyond what the example-based tests cover.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.validate import validate_cluster_structure
from repro.maintenance.incremental import IncrementalLowestIdClustering
from repro.graph.adjacency import Graph

N_NODES = 10


class IncrementalClusteringMachine(RuleBasedStateMachine):
    """Random link churn with full-equivalence checking."""

    @initialize()
    def setup(self) -> None:
        self.inc = IncrementalLowestIdClustering(Graph(nodes=range(N_NODES)))

    @rule(u=st.integers(0, N_NODES - 1), v=st.integers(0, N_NODES - 1))
    def toggle_edge(self, u: int, v: int) -> None:
        if u == v:
            return
        if self.inc.graph.has_edge(u, v):
            summary = self.inc.remove_edge(u, v)
        else:
            summary = self.inc.add_edge(u, v)
        # Flips are always part of the re-evaluated set's closure.
        assert summary.flipped <= summary.reevaluated

    @invariant()
    def matches_full_recompute(self) -> None:
        incremental = self.inc.structure()
        full = lowest_id_clustering(self.inc.graph)
        assert incremental.head_of == full.head_of

    @invariant()
    def satisfies_lowest_id_invariants(self) -> None:
        validate_cluster_structure(self.inc.structure(), lowest_id=True)


TestIncrementalClusteringStateful = IncrementalClusteringMachine.TestCase
TestIncrementalClusteringStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
