"""Socket-level contract: structured errors, streaming, framing caps.

An in-process :class:`ServeServer` over a real unix socket, driven with
the library client and with raw bytes.  The headline guarantee under
test: no payload a client can send — binary junk, truncated JSON,
unknown experiments, out-of-range parameters, megabyte lines — ever gets
a traceback back; every failure is one structured ``error`` frame.
"""

import json
import socket

import pytest
from repro.serve.client import ServeClient
from repro.serve.protocol import MAX_REQUEST_BYTES
from repro.serve.server import ServeServer
from repro.serve.service import ServeService

FAULT_PARAMS = {"losses": [0.0], "n": 10, "trials": 2, "seed": 5}


@pytest.fixture
def served(tmp_path):
    service = ServeService(tmp_path / "state", backend="serial", workers=1)
    service.start()
    server = ServeServer(service, tmp_path / "serve.sock")
    server.start()
    client = ServeClient(tmp_path / "serve.sock")
    yield client, server
    server.shutdown(grace=30)


def raw_exchange(client, payload: bytes, *, reads=1):
    """Send raw bytes, read ``reads`` response lines (None at EOF)."""
    conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    conn.settimeout(30)
    conn.connect(str(client.socket_path))
    try:
        conn.sendall(payload)
        reader = conn.makefile("rb")
        out = []
        for _ in range(reads):
            line = reader.readline(MAX_REQUEST_BYTES + 1)
            out.append(json.loads(line) if line else None)
        return out
    finally:
        conn.close()


class TestStructuredErrors:
    def test_malformed_json_gets_error_and_connection_survives(self, served):
        client, _ = served
        frames = raw_exchange(
            client, b'{not json\n{"op":"health"}\n', reads=2)
        assert frames[0]["type"] == "error"
        assert frames[0]["code"] == "bad-request"
        assert "Traceback" not in frames[0]["message"]
        assert frames[1]["type"] == "health"  # same connection still works

    def test_binary_garbage_gets_structured_error(self, served):
        client, _ = served
        frames = raw_exchange(client, b"\xff\xfe\x00garbage\n")
        assert frames[0]["type"] == "error"
        assert frames[0]["code"] == "bad-request"

    def test_oversized_line_rejected_and_connection_closed(self, served):
        client, _ = served
        line = b'{"pad":"' + b"x" * MAX_REQUEST_BYTES + b'"}\n'
        frames = raw_exchange(client, line + b'{"op":"health"}\n', reads=2)
        assert frames[0]["code"] == "bad-request"
        assert not frames[0]["retryable"]
        assert frames[1] is None  # connection was dropped

    def test_unknown_experiment_is_structured(self, served):
        client, _ = served
        resp = client.submit("warp-drive", {})
        assert resp["type"] == "error"
        assert resp["code"] == "unknown-experiment"
        assert resp["retryable"] is False

    def test_out_of_range_params_are_structured(self, served):
        client, _ = served
        resp = client.submit("faults", {"n": 10_000_000})
        assert resp["type"] == "error"
        assert resp["code"] == "bad-param"
        assert "Traceback" not in resp["message"]

    def test_unknown_id_lookup_is_structured(self, served):
        client, _ = served
        resp = client.status("never-submitted")
        assert resp == {"type": "error", "code": "not-found",
                        "id": "never-submitted",
                        "message": resp["message"], "retryable": False}

    def test_empty_lines_are_ignored(self, served):
        client, _ = served
        frames = raw_exchange(client, b'\n\n{"op":"health"}\n')
        assert frames[0]["type"] == "health"


class TestRequestFlow:
    def test_submit_status_result(self, served):
        client, _ = served
        acc = client.submit("faults", FAULT_PARAMS, request_id="flow-1")
        assert acc == {"type": "accepted", "id": "flow-1", "protocol": 1}
        final = client.result("flow-1", wait=60)
        assert final["type"] == "result" and final["id"] == "flow-1"
        assert final["result"]["points"]
        status = client.status("flow-1")
        assert status["type"] == "status" and status["state"] == "done"

    def test_stream_yields_updates_then_result(self, served):
        client, _ = served
        frames = list(client.stream(
            "faults", dict(FAULT_PARAMS, trials=4), request_id="flow-2"))
        kinds = [f["type"] for f in frames]
        assert kinds[0] == "accepted"
        assert kinds[-1] == "result"
        updates = [f for f in frames if f["type"] == "update"]
        assert updates, "streaming produced no incremental updates"
        versions = [u["version"] for u in updates]
        assert versions == sorted(versions)  # monotone, coalesced
        # incremental CI estimates appear as trials fold
        assert any(u["points"] for u in updates)
        for update in updates:
            for point in update["points"].values():
                for est in point["estimates"].values():
                    assert set(est) == {"mean", "half_width", "samples"}

    def test_result_wait_timeout_is_structured(self, served):
        client, _ = served
        client.submit("fig6", {"ns": [20, 40], "trials": 3},
                      request_id="slow-1")
        resp = client.result("slow-1", wait=0.0)
        if resp["type"] == "error":  # almost always: 0s wait
            assert resp["code"] == "timeout"
            assert resp["retryable"] is True
        final = client.result("slow-1", wait=120)
        assert final["type"] == "result"

    def test_cancel_roundtrip(self, served):
        client, _ = served
        client.submit("faults", FAULT_PARAMS, request_id="c-1")
        resp = client.cancel("c-1")
        assert resp["type"] == "cancelled"
        assert resp["state"] in ("cancelled", "done")  # race is honest

    def test_health_reports_readiness(self, served):
        client, _ = served
        health = client.health()
        assert health["healthz"] == "ok"
        assert health["readyz"] is True
        assert health["queue_depth"] == 0

    def test_error_result_arrives_as_error_frame(self, served):
        client, _ = served
        frames = list(client.stream("faults", {"n": -5}))
        assert frames[0]["type"] == "error"
        assert frames[0]["code"] == "bad-param"


class TestShutdown:
    def test_shutdown_drains_and_unlinks_socket(self, tmp_path):
        service = ServeService(tmp_path / "s", backend="serial")
        service.start()
        server = ServeServer(service, tmp_path / "s.sock")
        server.start()
        client = ServeClient(tmp_path / "s.sock")
        client.submit("faults", FAULT_PARAMS, request_id="drain-1")
        assert server.shutdown(grace=120) is True
        assert not (tmp_path / "s.sock").exists()
        # the accepted request finished, not vanished
        req = service.get("drain-1")
        assert req.state == "done"
