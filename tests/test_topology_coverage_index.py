"""Tests for :class:`repro.topology.coverage_index.CoverageIndex`.

The contract under test: with both invalidation signals wired (edge events
through the shared :class:`TopologyView`, role changes through
``invalidate_roles``), every cached coverage set and gateway selection
equals a fresh uncached recomputation after every event — for ≥ 200
Hypothesis-generated event interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backbone.gateway_selection import select_gateways
from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.three_hop import three_hop_coverage
from repro.coverage.two_five_hop import two_five_hop_coverage
from repro.geometry.mobility import RandomWalk
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.maintenance.incremental import IncrementalLowestIdClustering
from repro.maintenance.session import MobilitySession
from repro.topology.coverage_index import CoverageIndex
from repro.types import CoveragePolicy

from tests.strategies import connected_graphs

FRESH = {
    CoveragePolicy.TWO_FIVE_HOP: two_five_hop_coverage,
    CoveragePolicy.THREE_HOP: three_hop_coverage,
}


def assert_index_matches_scratch(index: CoverageIndex,
                                 inc: IncrementalLowestIdClustering) -> None:
    """Cached coverage + selection must equal an uncached recomputation."""
    structure = inc.structure()
    fresh_structure = lowest_id_clustering(inc.graph.copy())
    assert structure.head_of == fresh_structure.head_of
    compute = FRESH[index.policy]
    for head in fresh_structure.sorted_heads():
        cached = index.coverage(structure, head)
        fresh = compute(fresh_structure, head)
        assert cached == fresh, f"stale coverage for head {head}"
        assert index.selection(structure, head) == select_gateways(fresh)


class TestBasics:
    def test_coverage_hits_cache_on_repeat(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        inc = IncrementalLowestIdClustering(graph)
        index = CoverageIndex(inc.view)
        structure = inc.structure()
        head = structure.sorted_heads()[0]
        index.coverage(structure, head)
        misses = index.misses
        index.coverage(structure, head)
        assert index.misses == misses
        assert index.hits >= 1

    def test_invalidate_all_forces_recompute(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        inc = IncrementalLowestIdClustering(graph)
        index = CoverageIndex(inc.view)
        structure = inc.structure()
        index.all_coverage_sets(structure)
        misses = index.misses
        index.invalidate_all()
        index.all_coverage_sets(structure)
        assert index.misses > misses

    def test_policies_do_not_share_entries(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        inc = IncrementalLowestIdClustering(graph)
        i25 = CoverageIndex(inc.view, CoveragePolicy.TWO_FIVE_HOP)
        i3 = CoverageIndex(inc.view, CoveragePolicy.THREE_HOP)
        structure = inc.structure()
        for head in structure.sorted_heads():
            assert i25.coverage(structure, head).policy is \
                CoveragePolicy.TWO_FIVE_HOP
            assert i3.coverage(structure, head).policy is \
                CoveragePolicy.THREE_HOP

    def test_backbone_via_index_equals_scratch(self):
        net = random_geometric_network(40, 6.0, rng=7)
        inc = IncrementalLowestIdClustering(net.graph)
        index = CoverageIndex(inc.view)
        structure = inc.structure()
        via_index = build_static_backbone(structure, index=index)
        scratch = build_static_backbone(lowest_id_clustering(net.graph))
        assert via_index.nodes == scratch.nodes
        assert via_index.gateways == scratch.gateways
        assert via_index.selections == scratch.selections

    def test_index_requires_matching_policy(self):
        graph = Graph(edges=[(0, 1)])
        inc = IncrementalLowestIdClustering(graph)
        index = CoverageIndex(inc.view, CoveragePolicy.TWO_FIVE_HOP)
        with pytest.raises(ValueError):
            build_static_backbone(
                inc.structure(), CoveragePolicy.THREE_HOP, index=index
            )

    def test_index_excludes_explicit_coverage_sets(self):
        graph = Graph(edges=[(0, 1)])
        inc = IncrementalLowestIdClustering(graph)
        index = CoverageIndex(inc.view)
        structure = inc.structure()
        sets = index.all_coverage_sets(structure)
        with pytest.raises(ValueError):
            build_static_backbone(
                structure, coverage_sets=sets, index=index
            )


class TestEquivalenceProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        graph=connected_graphs(min_nodes=3, max_nodes=12),
        policy=st.sampled_from(list(FRESH)),
        data=st.data(),
    )
    def test_index_matches_fresh_after_each_event(self, graph, policy, data):
        """≥200 interleavings: cached results stay equal to scratch."""
        inc = IncrementalLowestIdClustering(graph)
        index = CoverageIndex(inc.view, policy)
        assert_index_matches_scratch(index, inc)  # warm the cache
        nodes = inc.graph.nodes()
        n_events = data.draw(st.integers(1, 6), label="n_events")
        for i in range(n_events):
            edges = inc.graph.edges()
            non_edges = [
                (u, v)
                for ui, u in enumerate(nodes)
                for v in nodes[ui + 1:]
                if not inc.graph.has_edge(u, v)
            ]
            # Removals may disconnect the graph; lowest-ID clustering is
            # well defined there, so any event interleaving is fair game.
            choices = []
            if edges:
                choices.append("remove")
            if non_edges:
                choices.append("add")
            op = data.draw(st.sampled_from(choices), label=f"op{i}")
            if op == "remove":
                u, v = edges[data.draw(
                    st.integers(0, len(edges) - 1), label=f"edge{i}")]
                summary = inc.remove_edge(u, v)
            else:
                u, v = non_edges[data.draw(
                    st.integers(0, len(non_edges) - 1), label=f"edge{i}")]
                summary = inc.add_edge(u, v)
            index.invalidate_roles(summary.role_changes)
            assert_index_matches_scratch(index, inc)


class TestIncrementalSession:
    def test_incremental_session_equals_scratch_session(self):
        """Tick for tick, the incremental path reproduces scratch results."""
        ticks = 6
        histories = []
        for incremental in (False, True):
            net = random_geometric_network(30, 6.0, rng=11)
            session = MobilitySession(
                net,
                RandomWalk(speed=20.0, rng=3),
                incremental=incremental,
            )
            histories.append(session.run(ticks))
        for scratch, inc in zip(*histories):
            assert scratch.structure.head_of == inc.structure.head_of
            assert scratch.backbone.nodes == inc.backbone.nodes
            assert scratch.backbone.selections == inc.backbone.selections
            assert scratch.link_changes == inc.link_changes
            assert scratch.cluster_churn == inc.cluster_churn
            assert scratch.backbone_churn == inc.backbone_churn

    def test_incremental_session_reuses_cache(self):
        net = random_geometric_network(30, 6.0, rng=5)
        session = MobilitySession(
            net, RandomWalk(speed=5.0, rng=9), incremental=True
        )
        session.run(4)
        assert session.coverage_index is not None
        assert session.coverage_index.hits > 0
