"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for cmd in ("generate", "cluster", "backbone", "broadcast",
                    "experiment", "trace", "ratio", "faults", "channel"):
            assert cmd in text


class TestCommands:
    def test_generate_and_reload(self, tmp_path, capsys):
        out = tmp_path / "net.json"
        assert main(["generate", "-n", "15", "-d", "6", "--seed", "3",
                     "--out", str(out)]) == 0
        assert out.exists()
        assert main(["cluster", "--load", str(out)]) == 0
        captured = capsys.readouterr()
        assert "clusters" in captured.out

    def test_backbone_verifies(self, capsys):
        assert main(["backbone", "-n", "20", "-d", "8", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "verified CDS" in out

    def test_backbone_mo_cds(self, capsys):
        assert main(["backbone", "-n", "20", "-d", "8", "--algorithm",
                     "mo-cds"]) == 0
        assert "mo-cds" in capsys.readouterr().out

    @pytest.mark.parametrize("protocol", ["flooding", "static", "dynamic",
                                          "mo-cds"])
    def test_broadcast_protocols(self, protocol, capsys):
        assert main(["broadcast", "-n", "20", "-d", "8",
                     "--protocol", protocol]) == 0
        assert "full delivery" in capsys.readouterr().out

    def test_broadcast_pruning_option(self, capsys):
        assert main(["broadcast", "-n", "15", "-d", "6",
                     "--pruning", "none"]) == 0

    def test_trace_figure3(self, capsys):
        assert main(["trace", "--figure3", "--source", "1"]) == 0
        out = capsys.readouterr().out
        assert "forward nodes [1, 2, 3, 4, 6, 7, 9]" in out
        assert "phase hello" in out

    def test_ratio(self, capsys):
        assert main(["ratio", "--samples", "3", "-n", "10", "-d", "4"]) == 0
        assert "static/MCDS" in capsys.readouterr().out

    def test_experiment_quick_with_exports(self, tmp_path, capsys):
        csv = tmp_path / "fig6.csv"
        js = tmp_path / "fig6.json"
        assert main(["experiment", "fig6", "--quick", "--seed", "7",
                     "--csv", str(csv), "--json", str(js)]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert csv.exists()
        assert json.loads(js.read_text())

    def test_error_path_returns_nonzero(self, tmp_path, capsys):
        missing = tmp_path / "missing.json"
        assert main(["cluster", "--load", str(missing)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExtensionCommands:
    def test_svg_export(self, tmp_path, capsys):
        out = tmp_path / "net.svg"
        assert main(["svg", "-n", "15", "-d", "8", "--backbone",
                     "--out", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("<?xml") and "</svg>" in text

    def test_svg_plain_no_labels(self, tmp_path):
        out = tmp_path / "plain.svg"
        assert main(["svg", "-n", "10", "-d", "6", "--no-labels",
                     "--out", str(out)]) == 0
        assert "<text" not in out.read_text()

    def test_robustness(self, capsys):
        assert main(["robustness", "-n", "20", "--trials", "2",
                     "--losses", "0", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "flooding" in out and "dynamic" in out

    def test_mobility(self, capsys):
        assert main(["mobility", "-n", "20", "-d", "10", "--ticks", "2",
                     "--speed", "2"]) == 0
        out = capsys.readouterr().out
        assert "gw turnover" in out

    def test_mobility_waypoint_model(self, capsys):
        assert main(["mobility", "-n", "15", "-d", "10", "--ticks", "1",
                     "--model", "waypoint"]) == 0

    def test_faults_sweep_table(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        assert main(["faults", "-n", "20", "-d", "8", "--seed", "4",
                     "--trials", "2", "--losses", "0", "0.2",
                     "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "loss" in text and "reliable-si" in text
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-fault-sweep"
        assert len(doc["points"]) == 2

    def test_faults_schedule_file(self, tmp_path, capsys):
        from repro.faults.schedule import FaultSchedule, NodeDown

        spec = tmp_path / "schedule.json"
        spec.write_text(json.dumps(
            FaultSchedule([NodeDown(time=1.0, node=5)]).to_spec()))
        assert main(["faults", "-n", "20", "-d", "8", "--seed", "4",
                     "--schedule", str(spec), "--source", "0",
                     "--loss", "0.1"]) == 0
        text = capsys.readouterr().out
        assert "1 events" in text
        for axis in ("delivery", "overhead", "latency"):
            assert axis in text

    def test_faults_bad_schedule_is_error(self, tmp_path, capsys):
        spec = tmp_path / "bad.json"
        spec.write_text("{nope")
        assert main(["faults", "-n", "10", "--schedule", str(spec)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_channel_sweep_table(self, tmp_path, capsys):
        out = tmp_path / "contention.json"
        assert main(["channel", "-n", "20", "-d", "8", "--seed", "4",
                     "--trials", "2", "--losses", "0", "0.2",
                     "--json", str(out)]) == 0
        text = capsys.readouterr().out
        assert "delivery by loss" in text and "collisions by loss" in text
        doc = json.loads(out.read_text())
        assert doc["format"] == "repro-fault-sweep"
        assert len(doc["points"]) == 2

    def test_channel_tdma_mac(self, capsys):
        assert main(["channel", "-n", "15", "-d", "6", "--trials", "2",
                     "--mac", "tdma", "--frame", "4"]) == 0
        assert "mac=tdma" in capsys.readouterr().out

    def test_trace_with_channel(self, capsys):
        assert main(["trace", "-n", "20", "-d", "8", "--seed", "2",
                     "--channel", "sinr", "--mac", "csma"]) == 0
        out = capsys.readouterr().out
        assert "channel [sinr/csma]:" in out and "collisions" in out

    def test_trace_sinr_needs_positions(self, capsys):
        assert main(["trace", "--figure3", "--channel", "sinr"]) == 1
        assert "positions" in capsys.readouterr().err

    def test_route(self, capsys):
        assert main(["route", "-n", "25", "-d", "8", "--source", "0"]) == 0
        out = capsys.readouterr().out
        assert "route 0 ->" in out and "stretch" in out
