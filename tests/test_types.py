"""Tests for repro.types."""

import pytest

from repro.types import CoveragePolicy, NodeRole, PruningLevel, ordered_edge


class TestOrderedEdge:
    def test_orders_ascending(self):
        assert ordered_edge(5, 2) == (2, 5)

    def test_keeps_ascending(self):
        assert ordered_edge(2, 5) == (2, 5)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            ordered_edge(3, 3)

    def test_negative_ids_allowed(self):
        assert ordered_edge(-4, 1) == (-4, 1)


class TestEnums:
    def test_coverage_policy_labels(self):
        assert CoveragePolicy.TWO_FIVE_HOP.label == "2.5-hop"
        assert CoveragePolicy.THREE_HOP.label == "3-hop"

    def test_coverage_policy_values_are_distinct(self):
        assert CoveragePolicy.TWO_FIVE_HOP is not CoveragePolicy.THREE_HOP

    def test_pruning_levels(self):
        assert {p.value for p in PruningLevel} == {"none", "basic", "full"}

    def test_pruning_from_value(self):
        assert PruningLevel("full") is PruningLevel.FULL

    def test_node_roles(self):
        assert NodeRole.CLUSTERHEAD.value == "clusterhead"
        assert NodeRole.MEMBER.value == "member"
        assert NodeRole.CANDIDATE.value == "candidate"
