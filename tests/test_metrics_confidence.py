"""Tests for confidence intervals and the sequential stopping rule."""

import math

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError, SampleBudgetExceededError
from repro.metrics.confidence import (
    ConfidenceInterval,
    SequentialEstimator,
    confidence_interval,
    inverse_normal_cdf,
    t_quantile,
)


class TestInverseNormal:
    @pytest.mark.parametrize("p", [0.001, 0.025, 0.3, 0.5, 0.8, 0.975, 0.995])
    def test_against_scipy(self, p):
        assert inverse_normal_cdf(p) == pytest.approx(
            scipy_stats.norm.ppf(p), abs=1e-6
        )

    def test_symmetry(self):
        assert inverse_normal_cdf(0.3) == pytest.approx(-inverse_normal_cdf(0.7))

    @pytest.mark.parametrize("p", [0.0, 1.0, -0.1, 1.5])
    def test_domain(self, p):
        with pytest.raises(ConfigurationError):
            inverse_normal_cdf(p)


class TestTQuantile:
    @pytest.mark.parametrize("dof", [3, 5, 10, 29, 100])
    @pytest.mark.parametrize("p", [0.95, 0.975, 0.995])
    def test_against_scipy(self, p, dof):
        assert t_quantile(p, dof) == pytest.approx(
            scipy_stats.t.ppf(p, dof), rel=2e-3
        )

    def test_converges_to_normal(self):
        assert t_quantile(0.975, 10_000) == pytest.approx(1.959964, abs=1e-3)

    def test_bad_dof(self):
        with pytest.raises(ConfigurationError):
            t_quantile(0.95, 0)


class TestConfidenceInterval:
    def test_known_sample(self):
        values = [10.0, 12.0, 9.0, 11.0, 13.0]
        ci = confidence_interval(values, confidence=0.95)
        mean = np.mean(values)
        sem = np.std(values, ddof=1) / math.sqrt(len(values))
        expected = scipy_stats.t.ppf(0.975, 4) * sem
        assert ci.mean == pytest.approx(mean)
        assert ci.half_width == pytest.approx(expected, rel=2e-3)
        assert ci.low < mean < ci.high

    def test_single_sample_degenerate(self):
        ci = confidence_interval([5.0])
        assert ci.half_width == 0.0 and ci.samples == 1

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            confidence_interval([])

    def test_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            confidence_interval([1, 2], confidence=1.0)

    def test_relative_half_width(self):
        ci = ConfidenceInterval(mean=10.0, half_width=0.5,
                                confidence=0.99, samples=30)
        assert ci.relative_half_width == 0.05

    def test_relative_half_width_zero_mean(self):
        ci = ConfidenceInterval(mean=0.0, half_width=0.5,
                                confidence=0.99, samples=30)
        assert ci.relative_half_width == math.inf
        ci0 = ConfidenceInterval(mean=0.0, half_width=0.0,
                                 confidence=0.99, samples=30)
        assert ci0.relative_half_width == 0.0


class TestSequentialEstimator:
    def test_converges_on_tight_data(self):
        est = SequentialEstimator(min_samples=5)
        for _ in range(5):
            est.add(100.0)
        assert est.converged()
        ci = est.require_converged()
        assert ci.mean == 100.0

    def test_no_early_convergence(self):
        est = SequentialEstimator(min_samples=30)
        for _ in range(10):
            est.add(1.0)
        assert not est.converged()

    def test_noisy_data_needs_more_samples(self):
        rng = np.random.default_rng(0)
        est = SequentialEstimator(min_samples=5, target=0.05)
        # Extremely noisy relative to the mean.
        for _ in range(5):
            est.add(rng.normal(1.0, 5.0))
        assert not est.converged()

    def test_paper_rule_converges_eventually(self):
        rng = np.random.default_rng(1)
        est = SequentialEstimator(confidence=0.99, target=0.05, min_samples=30)
        while not est.converged():
            est.add(rng.normal(50.0, 10.0))
            assert est.count < 10_000  # sanity guard
        ci = est.interval()
        assert ci.relative_half_width <= 0.05
        assert ci.mean == pytest.approx(50.0, rel=0.06)

    def test_require_converged_raises(self):
        est = SequentialEstimator(min_samples=2, max_samples=3)
        rng = np.random.default_rng(2)
        for _ in range(3):
            est.add(rng.normal(0.1, 50.0))
        with pytest.raises(SampleBudgetExceededError):
            est.require_converged()
        assert est.exhausted()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            SequentialEstimator(target=0.0)
        with pytest.raises(ConfigurationError):
            SequentialEstimator(min_samples=1)
        with pytest.raises(ConfigurationError):
            SequentialEstimator(min_samples=30, max_samples=10)

    def test_values_view(self):
        est = SequentialEstimator()
        est.add(1.0)
        est.add(2.0)
        assert est.values == (1.0, 2.0)
        assert est.count == 2


class TestProjectedSamples:
    def test_before_two_samples_projects_the_minimum(self):
        est = SequentialEstimator(min_samples=30)
        assert est.projected_samples() == 30
        est.add(1.0)
        assert est.projected_samples() == 30

    def test_converged_estimator_projects_no_extra_work(self):
        est = SequentialEstimator(min_samples=5)
        for _ in range(6):
            est.add(100.0)
        assert est.converged()
        assert est.projected_samples() <= max(est.count, est.min_samples)

    def test_noisy_data_projects_more_than_collected(self):
        rng = np.random.default_rng(0)
        est = SequentialEstimator(min_samples=5, target=0.05)
        for _ in range(5):
            est.add(rng.normal(10.0, 20.0))
        assert not est.converged()
        assert est.projected_samples() > est.count

    def test_projection_is_clamped_to_the_budget(self):
        rng = np.random.default_rng(3)
        est = SequentialEstimator(min_samples=2, max_samples=50, target=0.001)
        est.add(rng.normal(0.0, 100.0))
        est.add(rng.normal(0.0, 100.0))
        assert est.projected_samples() <= 50

    def test_projection_shrinks_as_the_interval_tightens(self):
        rng = np.random.default_rng(4)
        est = SequentialEstimator(min_samples=5, max_samples=100_000)
        for _ in range(5):
            est.add(rng.normal(50.0, 10.0))
        early = est.projected_samples()
        for _ in range(200):
            est.add(rng.normal(50.0, 10.0))
        assert est.projected_samples() <= max(early, est.count)


class TestIncompleteBeta:
    """Direct accuracy checks of the special-function layer."""

    @pytest.mark.parametrize("a,b,x", [
        (0.5, 0.5, 0.3), (2.0, 3.0, 0.5), (5.0, 1.0, 0.9),
        (10.0, 10.0, 0.25), (0.5, 4.0, 0.01),
    ])
    def test_against_scipy(self, a, b, x):
        from scipy.special import betainc as scipy_betainc

        from repro.metrics.confidence import regularized_incomplete_beta

        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            scipy_betainc(a, b, x), abs=1e-10
        )

    def test_boundaries(self):
        from repro.metrics.confidence import regularized_incomplete_beta

        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0


class TestTCdf:
    @pytest.mark.parametrize("t,dof", [
        (0.0, 3), (1.5, 3), (-2.0, 7), (2.576, 29), (10.0, 1),
    ])
    def test_against_scipy(self, t, dof):
        from repro.metrics.confidence import t_cdf

        assert t_cdf(t, dof) == pytest.approx(
            scipy_stats.t.cdf(t, dof), abs=1e-10
        )

    def test_symmetry(self):
        from repro.metrics.confidence import t_cdf

        assert t_cdf(1.3, 5) + t_cdf(-1.3, 5) == pytest.approx(1.0)

    def test_bad_dof(self):
        from repro.metrics.confidence import t_cdf

        with pytest.raises(ConfigurationError):
            t_cdf(1.0, 0)

    def test_quantile_cdf_roundtrip(self):
        from repro.metrics.confidence import t_cdf, t_quantile

        for p in (0.7, 0.95, 0.995):
            for dof in (2, 10, 50):
                assert t_cdf(t_quantile(p, dof), dof) == pytest.approx(
                    p, abs=1e-9
                )
