"""Tests for the collision medium and the broadcast-storm experiment."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network, star_graph
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.sim.medium import CollisionMedium
from repro.sim.messages import Hello
from repro.sim.network import SimNetwork
from repro.workload.storm import run_storm_experiment


class TestCollisionMedium:
    def test_single_transmission_delivered(self):
        net = SimNetwork(star_graph(3), collisions=True)
        got = []
        for node in net:
            node.on(Hello, lambda n, s, m: got.append((n.id, s)))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert sorted(got) == [(1, 0), (2, 0), (3, 0)]
        assert net.medium.collisions == 0

    def test_simultaneous_arrivals_collide(self):
        # 0 and 1 both transmit at t=0; node 2 hears both -> both lost.
        g = Graph(edges=[(0, 2), (1, 2), (0, 3)])
        net = SimNetwork(g, collisions=True)
        got = []
        for node in net:
            node.on(Hello, lambda n, s, m: got.append((n.id, s)))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)),
                         priority=(0,))
        net.sim.schedule(0.0, lambda: net.node(1).send(Hello(origin=1)),
                         priority=(1,))
        net.run_phase()
        # Node 3 hears only 0 (no contention); node 2 hears nothing.
        assert got == [(3, 0)]
        assert isinstance(net.medium, CollisionMedium)
        assert net.medium.collisions == 2

    def test_staggered_arrivals_do_not_collide(self):
        g = Graph(edges=[(0, 2), (1, 2)])
        net = SimNetwork(g, collisions=True)
        got = []
        net.node(2).on(Hello, lambda n, s, m: got.append(s))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.sim.schedule(1.0, lambda: net.node(1).send(Hello(origin=1)))
        net.run_phase()
        assert got == [0, 1]
        assert net.medium.collisions == 0

    def test_disable_toggle(self):
        g = Graph(edges=[(0, 2), (1, 2)])
        net = SimNetwork(g, collisions=True)
        net.medium.enabled = False
        got = []
        net.node(2).on(Hello, lambda n, s, m: got.append(s))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)),
                         priority=(0,))
        net.sim.schedule(0.0, lambda: net.node(1).send(Hello(origin=1)),
                         priority=(1,))
        net.run_phase()
        assert got == [0, 1]  # ideal behaviour while disabled


class TestJitteredBroadcast:
    def test_zero_jitter_is_default_behaviour(self):
        net = random_geometric_network(20, 8.0, rng=0)
        sim_a = SimNetwork(net.graph)
        a = DistributedSIBroadcast(sim_a, net.graph.nodes())
        a.start(0)
        sim_a.run_phase()
        assert a.result().delivered_to_all(net.graph)

    def test_jitter_preserves_delivery_on_ideal_medium(self):
        net = random_geometric_network(20, 8.0, rng=1)
        sim_net = SimNetwork(net.graph)
        proto = DistributedSIBroadcast(
            sim_net, net.graph.nodes(), jitter_slots=3, rng=2
        )
        proto.start(0)
        sim_net.run_phase()
        assert proto.result().delivered_to_all(net.graph)

    def test_synchronised_flood_collides_catastrophically(self):
        # Without back-off, the second relay wave is fully simultaneous and
        # dense neighbourhoods destroy it: the storm in its purest form.
        net = random_geometric_network(40, 18.0, rng=3)
        sim_net = SimNetwork(net.graph, collisions=True)
        flood = DistributedSIBroadcast(sim_net, net.graph.nodes())
        flood.start(0)
        sim_net.run_phase()
        assert sim_net.medium.collisions > 0
        # With a back-off window the same flood mostly recovers.
        sim_net2 = SimNetwork(net.graph, collisions=True)
        flood2 = DistributedSIBroadcast(
            sim_net2, net.graph.nodes(), jitter_slots=6, rng=4
        )
        flood2.start(0)
        sim_net2.run_phase()
        assert len(flood2.result().received) >= len(flood.result().received)


class TestStormExperiment:
    def test_shape(self):
        points = run_storm_experiment(
            degrees=(6.0, 18.0), n=30, trials=4, jitter_slots=4, rng=5
        )
        assert [p.average_degree for p in points] == [6.0, 18.0]
        sparse, dense = points
        # Channel damage grows with density for flooding...
        assert dense.collisions["flooding"] > sparse.collisions["flooding"]
        # ...and the dynamic backbone stays far below it when dense.
        assert (dense.collisions["dynamic"]
                < 0.5 * dense.collisions["flooding"])
        for p in points:
            for proto in ("flooding", "static", "dynamic"):
                assert 0.5 <= p.delivery[proto] <= 1.0
