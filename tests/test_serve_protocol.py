"""Wire-protocol validation: malformed input becomes structured errors.

The daemon's contract is that *nothing* a client sends — binary garbage,
truncated JSON, unknown experiments, out-of-range parameters — ever
surfaces as a traceback: every rejection is a ``ServeError`` with a
stable ``code`` and an honest ``retryable`` flag.
"""

import json
import math

import pytest
from repro.serve import protocol
from repro.serve.protocol import (
    MAX_REQUEST_BYTES,
    ServeError,
    encode,
    parse_request,
)
from repro.workload.serve_adapters import (
    available_experiments,
    get_adapter,
)


def err(line):
    with pytest.raises(ServeError) as info:
        parse_request(line)
    return info.value


class TestParseRequest:
    def test_minimal_submit_infers_op(self):
        out = parse_request('{"experiment": "fig6"}')
        assert out == {"op": "submit", "experiment": "fig6", "params": {}}

    def test_full_submit_normalises_fields(self):
        out = parse_request(json.dumps({
            "op": "submit", "experiment": "faults", "id": "req-1",
            "params": {"n": 20}, "deadline": 5, "urgent": True,
            "stream": False,
        }))
        assert out["id"] == "req-1"
        assert out["deadline"] == 5.0 and isinstance(out["deadline"], float)
        assert out["urgent"] is True and out["stream"] is False

    def test_bytes_input_is_accepted(self):
        out = parse_request(b'{"op": "health"}')
        assert out == {"op": "health"}

    def test_oversized_bytes_rejected(self):
        line = b'{"pad": "' + b"x" * MAX_REQUEST_BYTES + b'"}'
        e = err(line)
        assert e.code == protocol.BAD_REQUEST
        assert not e.retryable

    def test_non_utf8_rejected(self):
        e = err(b'{"experiment": "\xff\xfe"}')
        assert e.code == protocol.BAD_REQUEST
        assert "UTF-8" in str(e)

    def test_invalid_json_rejected(self):
        e = err("{not json")
        assert e.code == protocol.BAD_REQUEST
        assert "JSON" in str(e)

    @pytest.mark.parametrize("line", ['"a string"', "[1,2]", "42", "null"])
    def test_non_object_rejected(self, line):
        assert err(line).code == protocol.BAD_REQUEST

    def test_unknown_op_rejected(self):
        e = err('{"op": "reboot"}')
        assert e.code == protocol.BAD_REQUEST
        assert "reboot" in str(e)

    def test_missing_op_without_experiment_rejected(self):
        assert err('{"params": {}}').code == protocol.BAD_REQUEST

    @pytest.mark.parametrize("op", ["status", "result", "cancel"])
    def test_id_required_for_lookups(self, op):
        e = err(json.dumps({"op": op}))
        assert e.code == protocol.BAD_REQUEST
        assert "'id'" in str(e)

    @pytest.mark.parametrize("bad_id", [
        "", ".hidden", "-dash", "a" * 65, "has space", "a/b", "a\nb",
    ])
    def test_malformed_ids_rejected(self, bad_id):
        e = err(json.dumps({"op": "status", "id": bad_id}))
        assert e.code == protocol.BAD_REQUEST

    def test_experiment_must_be_string(self):
        e = err('{"op": "submit", "experiment": 7}')
        assert e.code == protocol.BAD_REQUEST

    def test_params_must_be_object(self):
        e = err('{"experiment": "fig6", "params": [1]}')
        assert e.code == protocol.BAD_PARAM

    @pytest.mark.parametrize("deadline", [0, -1, True, "5", math.inf])
    def test_bad_deadline_rejected(self, deadline):
        e = err(json.dumps({"experiment": "fig6",
                            "deadline": deadline}
                           ).replace("Infinity", "1e999"))
        assert e.code == protocol.BAD_REQUEST

    @pytest.mark.parametrize("key", ["urgent", "stream"])
    def test_flags_must_be_boolean(self, key):
        e = err(json.dumps({"experiment": "fig6", key: 1}))
        assert e.code == protocol.BAD_REQUEST

    def test_result_timeout_must_be_non_negative(self):
        e = err('{"op": "result", "id": "a", "timeout": -1}')
        assert e.code == protocol.BAD_REQUEST
        out = parse_request('{"op": "result", "id": "a", "timeout": 0}')
        assert out["timeout"] == 0.0


class TestResponses:
    def test_encode_is_one_sorted_json_line(self):
        data = encode({"b": 1, "a": 2})
        assert data == b'{"a":2,"b":1}\n'

    def test_error_response_defaults_retryable_from_code(self):
        assert protocol.error_response(
            protocol.OVERLOADED, "m")["retryable"] is True
        assert protocol.error_response(
            protocol.BAD_REQUEST, "m")["retryable"] is False

    def test_serve_error_to_response(self):
        resp = ServeError(protocol.DEADLINE, "too slow").to_response("r9")
        assert resp == {"type": "error", "code": "deadline",
                        "message": "too slow", "retryable": True,
                        "id": "r9"}

    def test_explicit_retryable_overrides_default(self):
        e = ServeError(protocol.BAD_REQUEST, "m", retryable=True)
        assert e.retryable is True


class TestAdapterValidation:
    """Schema errors out of the experiment registry — structured, never
    tracebacks (satellite: the serve schema-validation contract)."""

    def test_unknown_experiment_is_structured(self):
        with pytest.raises(ServeError) as info:
            get_adapter("does-not-exist")
        assert info.value.code == protocol.UNKNOWN_EXPERIMENT
        assert not info.value.retryable

    def test_chaos_adapter_hidden_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_CHAOS", raising=False)
        assert "chaos" not in available_experiments()
        with pytest.raises(ServeError) as info:
            get_adapter("chaos")
        assert info.value.code == protocol.UNKNOWN_EXPERIMENT
        monkeypatch.setenv("REPRO_SERVE_CHAOS", "1")
        assert "chaos" in available_experiments()
        assert get_adapter("chaos").name == "chaos"

    @pytest.mark.parametrize("experiment,params", [
        ("faults", {"n": 100000}),            # out of range
        ("faults", {"n": True}),              # bool is not an int
        ("faults", {"trials": 1}),            # below the floor
        ("faults", {"losses": [2.0]}),        # out-of-range element
        ("faults", {"losses": "all"}),        # wrong type
        ("faults", {"bogus": 1}),             # unknown key
        ("fig6", {"ns": [0]}),                # out-of-range element
        ("fig6", {"ns": list(range(2, 50))}),  # too many entries
        ("fig6", {"degrees": [0.0]}),
        ("channel", {"mac": "aloha"}),        # not a known choice
        ("channel", {"seed": -1}),
    ])
    def test_out_of_range_params_are_bad_param(self, experiment, params):
        adapter = get_adapter(experiment)
        with pytest.raises(ServeError) as info:
            adapter.validate(params)
        assert info.value.code == protocol.BAD_PARAM
        assert not info.value.retryable

    def test_validation_normalises_and_fills_defaults(self):
        adapter = get_adapter("faults")
        out = adapter.validate({"losses": [0.2, 0.0, 0.2], "n": 15})
        assert out["losses"] == [0.0, 0.2] or out["losses"] == (0.0, 0.2)
        assert out["n"] == 15
        assert out["trials"] > 0 and out["seed"] is not None

    def test_normalised_params_are_json_stable(self):
        adapter = get_adapter("fig6")
        out = adapter.validate({"ns": [40, 20], "trials": 3})
        assert json.loads(json.dumps(out)) == json.loads(json.dumps(out))
        assert out == adapter.validate(out)  # idempotent
