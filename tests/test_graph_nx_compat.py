"""Tests for the networkx bridge."""

import networkx as nx
import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import paper_figure3_graph
from repro.graph.nx_compat import from_networkx, to_networkx


class TestToNetworkx:
    def test_roundtrip_structure(self):
        g = paper_figure3_graph()
        nxg = to_networkx(g)
        assert nxg.number_of_nodes() == g.num_nodes
        assert nxg.number_of_edges() == g.num_edges
        assert from_networkx(nxg) == g

    def test_isolated_nodes_survive(self):
        g = Graph(nodes=[0, 1], edges=[])
        assert to_networkx(g).number_of_nodes() == 2

    def test_networkx_agrees_on_connectivity(self):
        g = paper_figure3_graph()
        assert nx.is_connected(to_networkx(g))


class TestFromNetworkx:
    def test_non_integer_ids_rejected(self):
        nxg = nx.Graph()
        nxg.add_edge("a", "b")
        with pytest.raises(TypeError):
            from_networkx(nxg)

    def test_bool_ids_rejected(self):
        nxg = nx.Graph()
        nxg.add_node(True)
        with pytest.raises(TypeError):
            from_networkx(nxg)

    def test_self_loops_dropped(self):
        nxg = nx.Graph()
        nxg.add_edge(1, 1)
        nxg.add_edge(1, 2)
        g = from_networkx(nxg)
        assert g.num_edges == 1

    def test_random_gnp_roundtrip(self):
        nxg = nx.gnp_random_graph(25, 0.2, seed=42)
        g = from_networkx(nxg)
        assert g.num_edges == nxg.number_of_edges()
        back = to_networkx(g)
        assert nx.utils.graphs_equal(back, nxg)
