"""Service-level chaos: SIGKILL daemons and workers, compare to the oracle.

The guarantee under test, end to end against real subprocess daemons: no
accepted request is ever silently lost, and no recovered answer differs
from the serial one-shot oracle — a crash either leaves the request owed
(finished bit-identically after restart) or failed with a structured,
retryable error.  Subprocess startup makes these slow, so the module is
``slow``-marked and runs in the ``make serve-chaos`` / CI lane.
"""

import json
import socket
import threading
import time
from pathlib import Path

import pytest

from chaos_serve import reap, sigkill, start_daemon, terminate, wait_ready
from repro.serve.client import ServeClient
from repro.serve.protocol import MAX_REQUEST_BYTES
from repro.workload.serve_adapters import RunContext, get_adapter

pytestmark = pytest.mark.slow


def canonical(result):
    return json.dumps(result, sort_keys=True)


def chaos_oracle(params, monkeypatch):
    """The serial no-injection answer (values never depend on injections:
    every chaos trial draws its metric before any fault fires)."""
    monkeypatch.setenv("REPRO_SERVE_CHAOS", "1")
    clean = {k: v for k, v in params.items()
             if k not in ("crash_indices", "sleep_indices", "raise_indices")}
    adapter = get_adapter("chaos")
    result = adapter.run(adapter.validate(clean),
                         RunContext(backend="serial", parallel=1))
    return json.loads(canonical(result))


@pytest.fixture
def arena(tmp_path):
    markers = tmp_path / "markers"
    markers.mkdir()
    return {
        "root": tmp_path / "state",
        "sock": tmp_path / "serve.sock",
        "markers": markers,
    }


def test_daemon_sigkill_mid_stream_then_restart_is_bit_identical(
        arena, monkeypatch):
    """Kill the daemon while a streamed request is folding trials; the
    restarted daemon recovers it from the journal prefix and finishes with
    exactly the oracle's numbers."""
    params = {"marker_dir": str(arena["markers"]), "trials": 6, "seed": 11,
              "trial_sleep": 0.4}
    proc = start_daemon(arena["root"], arena["sock"])
    try:
        wait_ready(arena["sock"], proc)
        client = ServeClient(arena["sock"])
        frames = []
        killed = threading.Event()
        for frame in client.stream("chaos", params, request_id="mid-1"):
            frames.append(frame)
            if frame.get("type") == "update" and frame["points"] and \
                    not killed.is_set():
                progressed = any(p["trials"] >= 1
                                 for p in frame["points"].values())
                if progressed:
                    sigkill(proc)  # mid-stream, trials still outstanding
                    killed.set()
        assert killed.is_set(), f"run finished before the kill: {frames}"
        # the stream ended at EOF without a terminal frame — the daemon
        # died owing us the answer
        assert frames[-1]["type"] != "result"

        proc = start_daemon(arena["root"], arena["sock"])
        wait_ready(arena["sock"], proc)
        final = ServeClient(arena["sock"]).result("mid-1", wait=120,
                                                  timeout=150)
        assert final["type"] == "result", final
        assert final["result"] == chaos_oracle(params, monkeypatch)
        status = ServeClient(arena["sock"]).status("mid-1")
        assert status["recovered"] is True
        assert terminate(proc) == 0
    finally:
        reap(proc)


def test_worker_sigkill_mid_request_retries_to_the_oracle(
        arena, monkeypatch):
    """A pool worker dies mid-chunk; supervision rebuilds the pool and the
    request still answers with the oracle's numbers, with the crash
    visible in the request's event summary."""
    params = {"marker_dir": str(arena["markers"]), "trials": 6, "seed": 7,
              "crash_indices": [1]}
    proc = start_daemon(arena["root"], arena["sock"], backend="process",
                        parallel=2)
    try:
        wait_ready(arena["sock"], proc)
        client = ServeClient(arena["sock"])
        acc = client.submit("chaos", params, request_id="wk-1")
        assert acc["type"] == "accepted", acc
        final = client.result("wk-1", wait=180, timeout=200)
        assert final["type"] == "result", final
        assert final["result"] == chaos_oracle(params, monkeypatch)
        assert final["events"].get("chunk-failure", 0) >= 1
        assert final["events"].get("retry", 0) >= 1
        assert terminate(proc) == 0
    finally:
        reap(proc)


def test_wedged_request_fails_its_deadline_and_daemon_stays_up(
        arena, monkeypatch):
    """A trial sleeps far past the request deadline: the client gets a
    structured retryable ``deadline`` error, and the daemon keeps serving
    (the wedged pool is abandoned, not waited on)."""
    wedged = {"marker_dir": str(arena["markers"]), "trials": 3, "seed": 3,
              "sleep_indices": [0], "sleep_seconds": 120.0}
    proc = start_daemon(arena["root"], arena["sock"], backend="process",
                        parallel=1)
    try:
        wait_ready(arena["sock"], proc)
        client = ServeClient(arena["sock"])
        acc = client.submit("chaos", wedged, request_id="wedge-1",
                            deadline=2.0)
        assert acc["type"] == "accepted", acc
        final = client.result("wedge-1", wait=60, timeout=90)
        assert final["type"] == "error", final
        assert final["code"] == "deadline"
        assert final["retryable"] is True

        # the daemon survived its wedged request and still does real work
        clean_markers = Path(arena["markers"]).parent / "markers2"
        clean_markers.mkdir()
        clean = {"marker_dir": str(clean_markers), "trials": 3, "seed": 3}
        client.submit("chaos", clean, request_id="after-wedge")
        after = client.result("after-wedge", wait=120, timeout=150)
        assert after["type"] == "result", after
        assert after["result"] == chaos_oracle(clean, monkeypatch)
        assert terminate(proc) == 0
    finally:
        reap(proc)


def test_malformed_and_oversized_payloads_never_crash_the_daemon(arena):
    proc = start_daemon(arena["root"], arena["sock"])
    try:
        wait_ready(arena["sock"], proc)

        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(30)
        conn.connect(str(arena["sock"]))
        conn.sendall(b"\x00\xffnot even close\n")
        reader = conn.makefile("rb")
        err = json.loads(reader.readline())
        assert err["type"] == "error" and err["code"] == "bad-request"
        conn.close()

        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(30)
        conn.connect(str(arena["sock"]))
        conn.sendall(b'{"pad":"' + b"x" * MAX_REQUEST_BYTES + b'"}\n')
        reader = conn.makefile("rb")
        err = json.loads(reader.readline())
        assert err["code"] == "bad-request"
        assert reader.readline() == b""  # connection dropped after cap
        conn.close()

        health = ServeClient(arena["sock"]).health()
        assert health["healthz"] == "ok" and health["readyz"] is True
        assert terminate(proc) == 0
    finally:
        reap(proc)


def test_no_accepted_request_is_lost_across_sigkill(arena, monkeypatch):
    """Accept a burst, SIGKILL before most of it ran, restart: every
    accepted request completes, each with the oracle's numbers."""
    base = {"marker_dir": str(arena["markers"]), "trials": 4,
            "trial_sleep": 0.3}
    ids = [f"burst-{i}" for i in range(3)]
    proc = start_daemon(arena["root"], arena["sock"])
    try:
        wait_ready(arena["sock"], proc)
        client = ServeClient(arena["sock"])
        for i, request_id in enumerate(ids):
            acc = client.submit("chaos", dict(base, seed=100 + i),
                                request_id=request_id)
            assert acc["type"] == "accepted", acc
        time.sleep(0.5)  # let the first request fold a trial or two
        sigkill(proc)

        proc = start_daemon(arena["root"], arena["sock"])
        wait_ready(arena["sock"], proc)
        client = ServeClient(arena["sock"])
        for i, request_id in enumerate(ids):
            final = client.result(request_id, wait=180, timeout=200)
            assert final["type"] == "result", (request_id, final)
            assert final["result"] == chaos_oracle(
                dict(base, seed=100 + i), monkeypatch)
        assert terminate(proc) == 0
    finally:
        reap(proc)
