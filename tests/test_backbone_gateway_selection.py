"""Tests for the greedy gateway-selection heuristic."""

import pytest
from hypothesis import given, settings

from repro.backbone.gateway_selection import select_gateways
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.entries import CoverageSet
from repro.coverage.policy import compute_coverage_set
from repro.errors import BackboneError
from repro.types import CoveragePolicy

from strategies import connected_graphs


class TestFigure3Selections:
    """The GATEWAY sets of the paper's Section 3 example."""

    @pytest.mark.parametrize(
        "head,expected",
        [(1, {6, 7}), (2, {6, 8}), (3, {7, 8, 9}), (4, {5, 9})],
    )
    def test_gateway_sets(self, fig3_clustering, head, expected):
        cov = compute_coverage_set(fig3_clustering, head)
        assert set(select_gateways(cov).gateways) == expected

    def test_head4_prefers_indirect_coverer(self, fig3_clustering):
        # "node 4 selects node 9, not node 10 ... because node 9 can also
        # indirectly cover node 1."
        cov = compute_coverage_set(fig3_clustering, 4)
        sel = select_gateways(cov)
        assert 9 in sel.gateways and 10 not in sel.gateways
        assert sel.connectors[3] == (9,)
        assert sel.connectors[1] == (9, 5)

    def test_head3_ties_broken_by_id(self, fig3_clustering):
        # 9 and 10 both cover only head 4; the lower id wins.
        cov = compute_coverage_set(fig3_clustering, 3)
        sel = select_gateways(cov)
        assert sel.connectors[4] == (9,)


class TestTargetsRestriction:
    def test_restricted_selection(self, fig3_clustering):
        cov = compute_coverage_set(fig3_clustering, 3)
        sel = select_gateways(cov, targets={4})
        assert sel.gateways == frozenset({9})
        assert sel.covered_targets() == frozenset({4})

    def test_empty_targets_empty_selection(self, fig3_clustering):
        cov = compute_coverage_set(fig3_clustering, 3)
        sel = select_gateways(cov, targets=set())
        assert sel.gateways == frozenset()
        assert sel.num_gateways == 0

    def test_foreign_targets_ignored(self, fig3_clustering):
        cov = compute_coverage_set(fig3_clustering, 2)
        sel = select_gateways(cov, targets={1, 99})
        assert sel.covered_targets() == frozenset({1})


class TestGreedyBehaviour:
    def test_prefers_high_direct_coverage(self):
        # Neighbour 10 covers both 2-hop heads; 11 and 12 cover one each.
        cov = CoverageSet(
            head=1,
            policy=CoveragePolicy.TWO_FIVE_HOP,
            c2=frozenset({2, 3}),
            c3=frozenset(),
            direct_witnesses={
                2: frozenset({10, 11}),
                3: frozenset({10, 12}),
            },
            indirect_witnesses={},
        )
        sel = select_gateways(cov)
        assert sel.gateways == frozenset({10})

    def test_phase2_reuses_selected_gateways(self):
        # Target 5 (3-hop) can go via (10, 20) or (11, 21); 10 is already a
        # gateway from phase 1, so (10, 20) costs fewer new nodes.
        cov = CoverageSet(
            head=1,
            policy=CoveragePolicy.THREE_HOP,
            c2=frozenset({2}),
            c3=frozenset({5}),
            direct_witnesses={2: frozenset({10})},
            indirect_witnesses={5: frozenset({(11, 21), (10, 20)})},
        )
        sel = select_gateways(cov)
        assert sel.gateways == frozenset({10, 20})

    def test_pure_c3_coverage(self):
        cov = CoverageSet(
            head=1,
            policy=CoveragePolicy.THREE_HOP,
            c2=frozenset(),
            c3=frozenset({5}),
            direct_witnesses={},
            indirect_witnesses={5: frozenset({(11, 21), (10, 20)})},
        )
        sel = select_gateways(cov)
        # Lexicographically smallest pair when no reuse is possible.
        assert sel.connectors[5] == (10, 20)

    def test_indirect_absorption_picks_min_partner(self):
        cov = CoverageSet(
            head=1,
            policy=CoveragePolicy.TWO_FIVE_HOP,
            c2=frozenset({2}),
            c3=frozenset({5}),
            direct_witnesses={2: frozenset({10})},
            indirect_witnesses={5: frozenset({(10, 22), (10, 21)})},
        )
        sel = select_gateways(cov)
        assert sel.connectors[5] == (10, 21)
        assert sel.gateways == frozenset({10, 21})


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_every_target_connected(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            for policy in CoveragePolicy:
                cov = compute_coverage_set(cs, head, policy)
                sel = select_gateways(cov)
                assert sel.covered_targets() == cov.all_targets
                for ch, path in sel.connectors.items():
                    hops = [head, *path, ch]
                    for a, b in zip(hops, hops[1:]):
                        assert graph.has_edge(a, b), (head, ch, path)
                    assert set(path) <= set(sel.gateways)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_gateways_are_non_heads(self, graph):
        cs = lowest_id_clustering(graph)
        for head in cs.sorted_heads():
            cov = compute_coverage_set(cs, head, CoveragePolicy.THREE_HOP)
            sel = select_gateways(cov)
            assert not (sel.gateways & cs.clusterheads)
