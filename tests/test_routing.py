"""Tests for cluster-based backbone routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import NodeNotFoundError
from repro.graph.generators import chain_graph, random_geometric_network
from repro.graph.traversal import bfs_distances
from repro.routing.cluster_routing import RouteFailure, backbone_route
from repro.routing.stretch import route_stretch_study

from strategies import connected_graphs


def backbone_of(graph):
    return build_static_backbone(lowest_id_clustering(graph))


class TestBackboneRoute:
    def test_trivial_cases(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert backbone_route(bb, 5, 5) == [5]
        assert backbone_route(bb, 5, 1) == [5, 1]  # direct link

    def test_cross_cluster_route(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        route = backbone_route(bb, 6, 10)
        assert route[0] == 6 and route[-1] == 10
        for a, b in zip(route, route[1:]):
            assert fig3_graph.has_edge(a, b)

    def test_interior_nodes_are_backbone(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        for s in fig3_graph.nodes():
            for t in fig3_graph.nodes():
                route = backbone_route(bb, s, t)
                for v in route[1:-1]:
                    assert v in bb.nodes, (s, t, route)

    def test_unknown_endpoints(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        with pytest.raises(NodeNotFoundError):
            backbone_route(bb, 99, 1)
        with pytest.raises(NodeNotFoundError):
            backbone_route(bb, 1, 99)

    def test_disconnected_raises(self):
        from repro.graph.adjacency import Graph

        g = Graph(edges=[(0, 1), (5, 6)])
        bb = backbone_of(g)
        with pytest.raises(RouteFailure):
            backbone_route(bb, 0, 6)

    def test_chain_route_is_optimal(self):
        g = chain_graph(8)
        bb = backbone_of(g)
        route = backbone_route(bb, 0, 7)
        assert route == list(range(8))  # only one path exists

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), data=st.data())
    def test_route_valid_for_random_pairs(self, graph, data):
        bb = backbone_of(graph)
        s = data.draw(st.sampled_from(graph.nodes()))
        t = data.draw(st.sampled_from(graph.nodes()))
        route = backbone_route(bb, s, t)
        assert route[0] == s and route[-1] == t
        for a, b in zip(route, route[1:]):
            assert graph.has_edge(a, b)
        for v in route[1:-1]:
            assert v in bb.nodes
        # Bounded stretch: each BFS hop costs at most a bounded detour
        # through the cluster structure.
        if s != t:
            optimal = bfs_distances(graph, s)[t]
            assert len(route) - 1 <= 4 * optimal + 4


class TestStretchStudy:
    def test_study_output(self):
        report = route_stretch_study(
            n=40, average_degree=10.0, networks=3, pairs_per_network=10,
            rng=7,
        )
        assert report.pairs == 30
        assert report.mean_stretch >= 1.0
        assert report.max_stretch >= report.mean_stretch
        assert report.mean_backbone_fraction == 1.0

    def test_stretch_small_in_practice(self):
        report = route_stretch_study(
            n=60, average_degree=12.0, networks=4, pairs_per_network=15,
            rng=8,
        )
        assert report.mean_stretch < 1.6
        assert report.max_stretch < 3.5
