"""Tests for the passive-clustering flooding baseline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.passive_clustering import (
    PassiveState,
    broadcast_passive_clustering,
)
from repro.errors import BroadcastError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network, star_graph
from repro.graph.properties import is_independent_set

from strategies import connected_graphs


class TestMechanics:
    def test_source_declares_head(self):
        pc = broadcast_passive_clustering(star_graph(4), 0, rng=0)
        assert pc.states[0] is PassiveState.CLUSTERHEAD
        assert 0 in pc.heads()

    def test_star_delivery(self):
        pc = broadcast_passive_clustering(star_graph(6), 0, rng=1)
        assert pc.result.delivered_to_all(star_graph(6))

    def test_relaying_neighbour_of_head_becomes_gateway(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        pc = broadcast_passive_clustering(g, 0, rng=2)
        # 1 heard head 0 before its relay, so it transmits as a gateway.
        assert pc.states[1] is PassiveState.GATEWAY
        assert pc.result.delivered_to_all(g)

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            broadcast_passive_clustering(star_graph(2), 9)

    def test_bad_timing_rejected(self):
        with pytest.raises(BroadcastError):
            broadcast_passive_clustering(star_graph(2), 0, latency=0.0)
        with pytest.raises(BroadcastError):
            broadcast_passive_clustering(star_graph(2), 0, jitter=(1.0, 0.5))

    def test_deterministic_given_seed(self):
        net = random_geometric_network(30, 10.0, rng=3)
        a = broadcast_passive_clustering(net.graph, 0, rng=11)
        b = broadcast_passive_clustering(net.graph, 0, rng=11)
        assert a.result.forward_nodes == b.result.forward_nodes
        assert a.states == b.states


class TestBehaviour:
    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(), seed=st.integers(0, 500))
    def test_forwarders_subset_receivers(self, graph, seed):
        pc = broadcast_passive_clustering(graph, 0, rng=seed)
        assert pc.result.forward_nodes <= pc.result.received
        assert pc.suppressed() <= pc.result.received

    def test_dense_networks_save_and_mostly_deliver(self):
        rng = np.random.default_rng(4)
        ratios, forwards = [], []
        for _ in range(15):
            net = random_geometric_network(60, 18.0, rng=rng)
            pc = broadcast_passive_clustering(net.graph, 0, rng=rng)
            ratios.append(len(pc.result.received) / 60.0)
            forwards.append(pc.result.num_forward_nodes / 60.0)
        assert np.mean(ratios) > 0.9       # mostly delivers when dense
        assert np.mean(forwards) < 0.75    # and saves real transmissions

    def test_sparse_networks_show_the_papers_critique(self):
        # "it suffers poor delivery rate": in sparse networks suppression
        # regularly silences bridges.
        rng = np.random.default_rng(5)
        ratios = []
        for _ in range(15):
            net = random_geometric_network(60, 6.0, rng=rng)
            pc = broadcast_passive_clustering(net.graph, 0, rng=rng)
            ratios.append(len(pc.result.received) / 60.0)
        assert min(ratios) < 1.0
        assert np.mean(ratios) < 0.95

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs(), seed=st.integers(0, 500))
    def test_heads_are_never_adjacent_to_earlier_heads_they_heard(
        self, graph, seed
    ):
        # First-declaration-wins: a node that heard a head before its own
        # transmission never declares; so two *mutually aware* heads cannot
        # both exist.  (Simultaneous unaware declarations can still collide,
        # so plain independence of the head set is NOT guaranteed; this
        # asserts the weaker, order-respecting property via state history.)
        pc = broadcast_passive_clustering(graph, 0, rng=seed)
        for h in pc.heads():
            assert pc.states[h] is PassiveState.CLUSTERHEAD
