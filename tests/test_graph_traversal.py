"""Tests for BFS traversals and k-hop neighbourhoods."""

import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, grid_graph
from repro.graph.traversal import (
    bfs_distances,
    bfs_tree,
    eccentricity,
    k_hop_neighbourhood,
    nodes_at_distance,
    shortest_path,
)


@pytest.fixture
def chain10():
    return chain_graph(10)


class TestBfsDistances:
    def test_chain_distances(self, chain10):
        dist = bfs_distances(chain10, 0)
        assert dist[0] == 0 and dist[9] == 9

    def test_max_depth_truncates(self, chain10):
        dist = bfs_distances(chain10, 0, max_depth=3)
        assert set(dist) == {0, 1, 2, 3}

    def test_unreachable_absent(self):
        g = Graph(nodes=[0, 1], edges=[])
        assert 1 not in bfs_distances(g, 0)

    def test_unknown_source(self, chain10):
        with pytest.raises(NodeNotFoundError):
            bfs_distances(chain10, 99)


class TestKHop:
    def test_includes_self(self, chain10):
        # The paper's N^k(v) includes v itself.
        assert 5 in k_hop_neighbourhood(chain10, 5, 2)

    def test_k0_is_self_only(self, chain10):
        assert k_hop_neighbourhood(chain10, 4, 0) == {4}

    def test_chain_khop(self, chain10):
        assert k_hop_neighbourhood(chain10, 5, 2) == {3, 4, 5, 6, 7}

    def test_negative_k_rejected(self, chain10):
        with pytest.raises(ValueError):
            k_hop_neighbourhood(chain10, 0, -1)

    def test_nodes_at_distance(self, chain10):
        assert nodes_at_distance(chain10, 5, 2) == {3, 7}

    def test_nodes_at_distance_zero(self, chain10):
        assert nodes_at_distance(chain10, 5, 0) == {5}


class TestShortestPath:
    def test_trivial(self, chain10):
        assert shortest_path(chain10, 3, 3) == [3]

    def test_chain_path(self, chain10):
        assert shortest_path(chain10, 2, 5) == [2, 3, 4, 5]

    def test_unreachable_is_none(self):
        g = Graph(nodes=[0, 1])
        assert shortest_path(g, 0, 1) is None

    def test_grid_path_length(self):
        g = grid_graph(4, 4)
        path = shortest_path(g, 0, 15)
        assert path is not None
        assert len(path) == 7  # 6 hops manhattan distance

    def test_path_edges_exist(self):
        g = grid_graph(3, 5)
        path = shortest_path(g, 0, 14)
        assert path is not None
        for u, v in zip(path, path[1:]):
            assert g.has_edge(u, v)


class TestBfsTreeAndEccentricity:
    def test_parents_consistent(self, chain10):
        parent = bfs_tree(chain10, 0)
        assert parent[0] is None
        assert parent[5] == 4

    def test_eccentricity(self, chain10):
        assert eccentricity(chain10, 0) == 9
        assert eccentricity(chain10, 5) == 5
