"""Tests for connectivity predicates and union-find."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.connectivity import (
    UnionFind,
    connected_components,
    is_connected,
    is_strongly_connected,
)
from repro.graph.generators import chain_graph


class TestIsConnected:
    def test_empty_and_single(self):
        assert is_connected(Graph())
        assert is_connected(Graph(nodes=[1]))

    def test_chain_connected(self):
        assert is_connected(chain_graph(20))

    def test_two_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        assert not is_connected(g)


class TestConnectedComponents:
    def test_largest_first(self):
        g = Graph(edges=[(0, 1), (1, 2), (5, 6)])
        g.add_node(9)
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1]
        assert comps[0] == {0, 1, 2}
        assert comps[2] == {9}

    def test_empty(self):
        assert connected_components(Graph()) == []


class TestStrongConnectivity:
    def test_cycle_is_strong(self):
        succ = {0: {1}, 1: {2}, 2: {0}}
        assert is_strongly_connected(succ)

    def test_dag_is_not_strong(self):
        succ = {0: {1}, 1: {2}, 2: set()}
        assert not is_strongly_connected(succ)

    def test_reachable_but_not_coreachable(self):
        succ = {0: {1, 2}, 1: {0}, 2: set()}
        assert not is_strongly_connected(succ)

    def test_single_and_empty(self):
        assert is_strongly_connected({0: set()})
        assert is_strongly_connected({})

    def test_missing_node_in_successors(self):
        with pytest.raises(KeyError):
            is_strongly_connected({0: {1}})


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(range(5))
        assert uf.num_components == 5
        assert uf.union(0, 1)
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_components == 4

    def test_union_idempotent(self):
        uf = UnionFind(range(3))
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.num_components == 2

    def test_add_is_idempotent(self):
        uf = UnionFind()
        uf.add(1)
        uf.add(1)
        assert uf.num_components == 1

    def test_transitive(self):
        uf = UnionFind(range(4))
        uf.union(0, 1)
        uf.union(2, 3)
        uf.union(1, 2)
        assert uf.connected(0, 3)
        assert uf.num_components == 1
