"""Tests for blind flooding."""

import pytest
from hypothesis import given, settings

from repro.broadcast.flooding import blind_flooding
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph
from repro.graph.traversal import bfs_distances, eccentricity

from strategies import connected_graphs


class TestFlooding:
    def test_everyone_forwards(self, fig3_graph):
        r = blind_flooding(fig3_graph, 1)
        assert r.forward_nodes == frozenset(fig3_graph.nodes())
        assert r.transmissions == fig3_graph.num_nodes

    def test_reception_times_are_bfs_distances(self, fig3_graph):
        r = blind_flooding(fig3_graph, 1)
        assert dict(r.reception_time) == bfs_distances(fig3_graph, 1)

    def test_latency_is_eccentricity(self):
        g = chain_graph(9)
        assert blind_flooding(g, 0).latency == eccentricity(g, 0)

    def test_unknown_source(self, fig3_graph):
        with pytest.raises(NodeNotFoundError):
            blind_flooding(fig3_graph, 999)

    def test_disconnected_partial_delivery(self):
        g = Graph(edges=[(0, 1), (5, 6)])
        r = blind_flooding(g, 0)
        assert r.received == frozenset({0, 1})
        assert not r.delivered_to_all(g)

    def test_single_node(self):
        g = Graph(nodes=[3])
        r = blind_flooding(g, 3)
        assert r.num_forward_nodes == 1
        assert r.latency == 0

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery_on_connected(self, graph):
        r = blind_flooding(graph, 0)
        assert r.delivered_to_all(graph)
        assert r.num_forward_nodes == graph.num_nodes
