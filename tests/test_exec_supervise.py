"""Tests for the supervised execution layer (retry, timeout, degrade)."""

import errno
import os
from concurrent.futures import BrokenExecutor

import pytest

from chaos_exec import make_chaos_trial
from repro.errors import ChunkRetryExhaustedError, ConfigurationError
from repro.exec.backends import ExecutionBackend, SerialBackend, TrialJob
from repro.exec.spec import TrialSpec
from repro.exec.supervise import (
    DEGRADE_ORDER,
    FAILURE_KINDS,
    ExecEvent,
    SupervisedBackend,
    _ChunkTimeout,
    classify_failure,
)
from repro.workload.trials import paired_trials


def make_always_fail(*, message: str = "boom"):
    """Spec factory: a trial that fails every single attempt."""

    def trial(index, gen):
        raise RuntimeError(f"{message} (trial {index})")

    return trial


def make_misconfigured(**_kwargs):
    """Spec factory: a trial that raises ConfigurationError."""

    def trial(index, gen):
        raise ConfigurationError("bad trial configuration")

    return trial


def chaos_spec(marker_dir, **kwargs):
    """A chaos trial spec rooted at ``marker_dir``."""
    return TrialSpec.create(
        "chaos_exec:make_chaos_trial", marker_dir=str(marker_dir), **kwargs
    )


def reference_outcome(spec_kwargs, marker_dir, *, trials=8, seed=11):
    """The undisturbed serial outcome for a chaos spec (no injections)."""
    spec = chaos_spec(marker_dir, **spec_kwargs)
    return paired_trials(spec=spec, min_samples=trials, max_samples=trials,
                         rng=seed, backend="serial")


class TestValidation:
    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisedBackend(retries=-1)

    def test_non_positive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisedBackend(chunk_timeout=0.0)

    def test_degrade_after_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisedBackend(degrade_after=0)

    def test_default_inner_is_serial(self):
        assert SupervisedBackend().inner.name == "serial"

    def test_name_resolves_through_as_backend(self):
        sup = SupervisedBackend("thread", workers=2)
        assert sup.inner.name == "thread"
        sup.close()


class TestClassifyFailure:
    def test_timeout_marker_is_timeout(self):
        assert classify_failure(_ChunkTimeout("slow")) == "timeout"

    def test_broken_executor_is_crash(self):
        assert classify_failure(BrokenExecutor("worker died")) == "crash"

    def test_anything_else_is_transient(self):
        assert classify_failure(ValueError("nope")) == "transient"

    def test_kinds_are_the_published_constants(self):
        assert set(FAILURE_KINDS) == {"crash", "timeout", "transient",
                                      "fatal"}
        assert DEGRADE_ORDER == ("process", "thread", "serial")

    def test_memory_error_is_crash(self):
        assert classify_failure(MemoryError()) == "crash"

    def test_broken_pipe_is_crash_not_generic_oserror(self):
        assert classify_failure(BrokenPipeError(errno.EPIPE, "pipe")) == \
            "crash"

    @pytest.mark.parametrize("code", [errno.ENOSPC, errno.EROFS,
                                      errno.EDQUOT])
    def test_disk_full_errnos_are_fatal(self, code):
        assert classify_failure(OSError(code, os.strerror(code))) == "fatal"

    @pytest.mark.parametrize("code", [errno.EMFILE, errno.ENFILE,
                                      errno.EAGAIN, errno.EINTR])
    def test_resource_blip_errnos_are_transient(self, code):
        assert classify_failure(OSError(code, os.strerror(code))) == \
            "transient"

    def test_unclassified_oserror_is_transient(self):
        assert classify_failure(OSError(errno.EIO, "io")) == "transient"


def make_disk_full(**_kwargs):
    """Spec factory: a trial that hits a full disk every attempt."""

    def trial(index, gen):
        raise OSError(errno.ENOSPC, "No space left on device")

    return trial


class TestFatalFailures:
    def test_fatal_failure_is_raised_without_retry(self):
        spec = TrialSpec.create("test_exec_supervise:make_disk_full")
        events = []
        sup = SupervisedBackend("serial", retries=5, backoff_base=0.001,
                                on_event=events.append)
        with pytest.raises(OSError) as excinfo:
            paired_trials(spec=spec, min_samples=2, max_samples=2,
                          rng=0, backend=sup)
        assert excinfo.value.errno == errno.ENOSPC
        kinds = [e.kind for e in events]
        assert "retry" not in kinds  # surfaced immediately, budget intact
        failures = [e for e in events if e.kind == "chunk-failure"]
        assert failures and failures[0].failure == "fatal"


class TestExecEventSerialisation:
    def test_round_trip_through_dict(self):
        event = ExecEvent(kind="chunk-failure", backend="process",
                          failure="crash", attempt=2, chunk_start=8,
                          chunk_size=4, detail="BrokenExecutor('x')")
        assert ExecEvent.from_dict(event.to_dict()) == event

    def test_round_trip_through_json(self):
        import json

        event = ExecEvent(kind="degrade", backend="thread",
                          detail="thread -> serial")
        payload = json.loads(json.dumps(event.to_dict()))
        assert ExecEvent.from_dict(payload) == event

    def test_from_dict_ignores_unknown_fields(self):
        data = ExecEvent(kind="retry", backend="serial").to_dict()
        data["request_id"] = "r-42"  # serve layer may decorate the stream
        assert ExecEvent.from_dict(data) == \
            ExecEvent(kind="retry", backend="serial")


class TestOwnership:
    class _Closable(ExecutionBackend):
        name = "serial"
        workers = 1

        def __init__(self):
            self.closed = 0
            self.abandoned = 0

        def run_wave(self, job, start_index, seeds):
            return SerialBackend().run_wave(job, start_index, seeds)

        def close(self):
            self.closed += 1

        def abandon(self):
            self.abandoned += 1

    def test_owned_inner_is_closed(self):
        inner = self._Closable()
        SupervisedBackend(inner).close()
        assert inner.closed == 1

    def test_unowned_inner_survives_close(self):
        inner = self._Closable()
        SupervisedBackend(inner, owns_inner=False).close()
        assert inner.closed == 0

    def test_degraded_replacement_is_owned_even_when_inner_was_shared(self):
        shared = _FailingInner("thread")
        sup = SupervisedBackend(shared, retries=3, degrade_after=1,
                                backoff_base=0.001, owns_inner=False)
        paired_trials(
            spec=TrialSpec.create("chaos_exec:make_chaos_trial",
                                  marker_dir="/nonexistent-unused"),
            min_samples=2, max_samples=2, rng=0, backend=sup,
        )
        assert sup.inner.name == "serial"
        assert sup._owns_inner is True  # replacement created here
        sup.close()  # must not raise; shared inner untouched


class TestTransientRetry:
    def test_injected_exception_is_retried_and_estimates_match(self, tmp_path):
        chaos_dir = tmp_path / "chaos"
        ref_dir = tmp_path / "ref"
        chaos_dir.mkdir()
        ref_dir.mkdir()
        reference = reference_outcome({}, ref_dir)

        events = []
        sup = SupervisedBackend("serial", retries=2, backoff_base=0.001,
                                on_event=events.append)
        outcome = paired_trials(
            spec=chaos_spec(chaos_dir, raise_indices=(3,)),
            min_samples=8, max_samples=8, rng=11, backend=sup,
        )
        assert outcome.estimates == reference.estimates
        assert outcome.trials == reference.trials
        kinds = [e.kind for e in events]
        assert "chunk-failure" in kinds
        assert "retry" in kinds
        failures = [e for e in events if e.kind == "chunk-failure"]
        assert all(e.failure == "transient" for e in failures)

    def test_events_collected_and_summarised(self, tmp_path):
        sup = SupervisedBackend("serial", retries=2, backoff_base=0.001)
        paired_trials(
            spec=chaos_spec(tmp_path, raise_indices=(0,)),
            min_samples=4, max_samples=4, rng=1, backend=sup,
        )
        summary = sup.event_summary()
        assert summary.get("chunk-failure", 0) >= 1
        assert summary.get("retry", 0) >= 1
        assert all(isinstance(e, ExecEvent) for e in sup.events)


class TestTimeout:
    def test_hung_chunk_is_timed_out_and_retried(self, tmp_path):
        chaos_dir = tmp_path / "chaos"
        ref_dir = tmp_path / "ref"
        chaos_dir.mkdir()
        ref_dir.mkdir()
        reference = reference_outcome({}, ref_dir, trials=6)

        events = []
        sup = SupervisedBackend("serial", retries=2, chunk_timeout=0.25,
                                backoff_base=0.001, on_event=events.append)
        outcome = paired_trials(
            spec=chaos_spec(chaos_dir, sleep_indices=(2,),
                            sleep_seconds=1.5),
            min_samples=6, max_samples=6, rng=11, backend=sup,
        )
        assert outcome.estimates == reference.estimates
        failures = [e for e in events if e.kind == "chunk-failure"]
        assert any(e.failure == "timeout" for e in failures)
        assert any(e.kind == "pool-rebuild" for e in events)


class TestRetryExhausted:
    def test_budget_exhaustion_raises_with_context(self):
        spec = TrialSpec.create("test_exec_supervise:make_always_fail")
        sup = SupervisedBackend("serial", retries=1, backoff_base=0.001)
        with pytest.raises(ChunkRetryExhaustedError) as excinfo:
            paired_trials(spec=spec, min_samples=2, max_samples=2,
                          rng=0, backend=sup)
        err = excinfo.value
        assert err.attempts == 2
        assert err.failure == "transient"
        assert isinstance(err.cause, RuntimeError)
        assert sup.event_summary().get("give-up", 0) == 1

    def test_configuration_error_is_never_retried(self):
        spec = TrialSpec.create("test_exec_supervise:make_misconfigured")
        sup = SupervisedBackend("serial", retries=5, backoff_base=0.001)
        with pytest.raises(ConfigurationError):
            paired_trials(spec=spec, min_samples=2, max_samples=2,
                          rng=0, backend=sup)
        assert sup.event_summary().get("retry", 0) == 0


class _FailingInner(ExecutionBackend):
    """A stand-in pool that always reports a dead worker."""

    def __init__(self, name: str, workers: int = 2) -> None:
        self.name = name
        self.workers = workers
        self.abandoned = 0

    def run_wave(self, job, start_index, seeds):
        raise BrokenExecutor("worker died")

    def abandon(self) -> None:
        self.abandoned += 1


class TestDegradationLadder:
    def test_process_degrades_to_thread_and_recovers(self, tmp_path):
        fake = _FailingInner("process")
        events = []
        sup = SupervisedBackend(fake, retries=3, degrade_after=1,
                                backoff_base=0.001, on_event=events.append)
        outcome = paired_trials(
            spec=chaos_spec(tmp_path), min_samples=4, max_samples=4,
            rng=5, backend=sup,
        )
        assert outcome.trials == 4
        assert fake.abandoned == 1
        assert sup.inner.name == "thread"
        degrades = [e for e in events if e.kind == "degrade"]
        assert degrades and "process -> thread" in degrades[0].detail
        sup.close()

    def test_thread_degrades_to_serial(self, tmp_path):
        sup = SupervisedBackend(_FailingInner("thread"), retries=3,
                                degrade_after=1, backoff_base=0.001)
        outcome = paired_trials(
            spec=chaos_spec(tmp_path), min_samples=4, max_samples=4,
            rng=5, backend=sup,
        )
        assert outcome.trials == 4
        assert sup.inner.name == "serial"

    def test_serial_has_nowhere_to_go(self):
        sup = SupervisedBackend(_FailingInner("serial"), retries=1,
                                degrade_after=1, backoff_base=0.001)
        spec = TrialSpec.create("test_exec_supervise:make_always_fail")
        with pytest.raises(ChunkRetryExhaustedError) as excinfo:
            paired_trials(spec=spec, min_samples=2, max_samples=2,
                          rng=0, backend=sup)
        assert excinfo.value.failure == "crash"
        assert sup.event_summary().get("degrade", 0) == 0


class TestProcessCrashRecovery:
    def test_worker_suicide_is_survived_bit_identically(self, tmp_path):
        chaos_dir = tmp_path / "chaos"
        ref_dir = tmp_path / "ref"
        chaos_dir.mkdir()
        ref_dir.mkdir()
        reference = reference_outcome({}, ref_dir, trials=6)

        events = []
        sup = SupervisedBackend("process", workers=2, retries=2,
                                backoff_base=0.001, on_event=events.append)
        try:
            outcome = paired_trials(
                spec=chaos_spec(chaos_dir, crash_indices=(2,)),
                min_samples=6, max_samples=6, rng=11,
                backend=sup, parallel=2,
            )
        finally:
            sup.close()
        assert outcome.estimates == reference.estimates
        assert outcome.trials == reference.trials
        failures = [e for e in events if e.kind == "chunk-failure"]
        assert any(e.failure == "crash" for e in failures)
        assert any(e.kind == "pool-rebuild" for e in events)
