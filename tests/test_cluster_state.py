"""Tests for the ClusterStructure data types."""

import pytest

from repro.cluster.state import Cluster, ClusterStructure
from repro.errors import ClusteringError, NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.types import NodeRole


@pytest.fixture
def simple_structure():
    g = Graph(edges=[(1, 5), (1, 6), (2, 6)])
    return ClusterStructure(graph=g, head_of={1: 1, 2: 2, 5: 1, 6: 1})


class TestValidation:
    def test_missing_node_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ClusteringError):
            ClusterStructure(graph=g, head_of={1: 1})

    def test_unknown_head_rejected(self):
        g = Graph(edges=[(1, 2)])
        with pytest.raises(ClusteringError):
            ClusterStructure(graph=g, head_of={1: 9, 2: 9})

    def test_non_adjacent_member_rejected(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        with pytest.raises(ClusteringError):
            ClusterStructure(graph=g, head_of={1: 1, 2: 1, 3: 1})

    def test_head_of_head_must_be_self(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        # 2's head is 1, but 3 claims 2 as head -> 2 is both member and head.
        with pytest.raises(ClusteringError):
            ClusterStructure(graph=g, head_of={1: 1, 2: 1, 3: 2})


class TestQueries:
    def test_clusterheads(self, simple_structure):
        assert simple_structure.clusterheads == frozenset({1, 2})

    def test_members(self, simple_structure):
        assert simple_structure.members(1) == frozenset({5, 6})
        assert simple_structure.members(2) == frozenset()

    def test_members_of_non_head_rejected(self, simple_structure):
        with pytest.raises(ClusteringError):
            simple_structure.members(5)

    def test_role(self, simple_structure):
        assert simple_structure.role(1) is NodeRole.CLUSTERHEAD
        assert simple_structure.role(5) is NodeRole.MEMBER

    def test_role_unknown_node(self, simple_structure):
        with pytest.raises(NodeNotFoundError):
            simple_structure.role(42)

    def test_neighbouring_clusterheads(self, simple_structure):
        assert simple_structure.neighbouring_clusterheads(6) == frozenset({1, 2})
        assert simple_structure.neighbouring_clusterheads(5) == frozenset({1})

    def test_num_clusters_and_sorted_heads(self, simple_structure):
        assert simple_structure.num_clusters == 2
        assert simple_structure.sorted_heads() == [1, 2]

    def test_cluster_size(self):
        c = Cluster(head=1, members=frozenset({2, 3}))
        assert c.size == 3
