"""End-to-end replay of the paper's Section 3 worked example (Figure 3).

Every number the paper states about the 10-node example network is asserted
here, from the CH_HOP message contents through the final forward-node counts
of both backbones — the strongest single check that the implementation is
the paper's algorithm and not a variant.
"""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.cluster_graph import build_cluster_graph
from repro.coverage.policy import compute_all_coverage_sets
from repro.protocols.runner import (
    run_distributed_build,
    run_distributed_sd_broadcast,
)
from repro.sim.messages import ChHop1, ChHop2
from repro.types import CoveragePolicy


class TestClusterFormation:
    """Figure 3 (b): clusters after the lowest-ID algorithm."""

    def test_clusters(self, fig3_clustering):
        assert sorted(fig3_clustering.clusterheads) == [1, 2, 3, 4]
        assert fig3_clustering.head_of == {
            1: 1, 2: 2, 3: 3, 4: 4,
            5: 1, 6: 1, 7: 1, 8: 2, 9: 3, 10: 3,
        }


class TestChHopMessages:
    """The CH_HOP1/CH_HOP2 message contents listed in Section 3."""

    EXPECTED_HOP1 = {
        5: {1}, 6: {1, 2}, 7: {1, 3}, 8: {2, 3}, 9: {3, 4}, 10: {3, 4},
    }

    def test_hop1_contents(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        hop1 = {
            e.sender: set(e.message.heads)
            for e in build.network.trace.entries
            if isinstance(e.message, ChHop1)
        }
        assert hop1 == self.EXPECTED_HOP1

    def test_hop2_contents(self, fig3_graph):
        # CH_HOP2(9) = {1[5]}, CH_HOP2(5) = {3[9]}; all others empty.
        build = run_distributed_build(fig3_graph)
        hop2 = {
            e.sender: {ch: set(ws) for ch, ws in e.message.entries.items()}
            for e in build.network.trace.entries
            if isinstance(e.message, ChHop2)
        }
        assert hop2[9] == {1: {5}}
        assert hop2[5] == {3: {9}}
        for v in (6, 7, 8, 10):
            assert hop2[v] == {}


class TestCoverageSets:
    """C(1)..C(4) as computed in Section 3 (with the C(3) typo corrected)."""

    def test_all_heads(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering)
        assert covs[1].all_targets == frozenset({2, 3})
        assert covs[2].all_targets == frozenset({1, 3})
        assert covs[3].all_targets == frozenset({1, 2, 4})
        assert covs[4].c2 == frozenset({3})
        assert covs[4].c3 == frozenset({1})


class TestGatewaySelection:
    """GATEWAY(1)={6,7}, GATEWAY(2)={6,8}, GATEWAY(3)={7,8,9},
    GATEWAY(4)={5,9}."""

    def test_selections(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert bb.selections[1].gateways == frozenset({6, 7})
        assert bb.selections[2].gateways == frozenset({6, 8})
        assert bb.selections[3].gateways == frozenset({7, 8, 9})
        assert bb.selections[4].gateways == frozenset({5, 9})

    def test_backbone_is_figure3c(self, fig3_clustering):
        # Figure 3 (c): heads 1-4, gateways 5-9; node 10 stays white.
        bb = build_static_backbone(fig3_clustering)
        assert bb.nodes == frozenset(range(1, 10))


class TestClusterGraphs:
    """Figure 4: the two cluster graphs of the example network."""

    def test_figure4a_and_4b(self, fig3_clustering):
        g25 = build_cluster_graph(fig3_clustering, CoveragePolicy.TWO_FIVE_HOP)
        g3 = build_cluster_graph(fig3_clustering, CoveragePolicy.THREE_HOP)
        assert g25 == {1: {2, 3}, 2: {1, 3}, 3: {1, 2, 4}, 4: {1, 3}}
        assert g3 == {1: {2, 3, 4}, 2: {1, 3}, 3: {1, 2, 4}, 4: {1, 3}}


class TestBroadcastIllustration:
    """Section 3's broadcast comparison from source 1: 9 vs 7 forwards."""

    def test_static_nine_forwards(self, fig3_graph, fig3_clustering):
        r = broadcast_si(fig3_graph, build_static_backbone(fig3_clustering), 1)
        assert r.num_forward_nodes == 9
        assert r.forward_nodes == frozenset({1, 2, 3, 4, 5, 6, 7, 8, 9})

    def test_dynamic_seven_forwards(self, fig3_clustering):
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert dyn.result.num_forward_nodes == 7
        assert dyn.result.forward_nodes == frozenset({1, 2, 3, 4, 6, 7, 9})

    def test_edge_elimination_matches_paper(self, fig3_clustering):
        # "the edges (2,3) and (4,1) in the cluster graph can be eliminated,
        # which suggests that nodes 8 and 5 do not need to forward" while
        # "node 9 still needs to forward the packet to clusterhead 4".
        dyn = broadcast_sd(fig3_clustering, source=1)
        assert 8 not in dyn.result.forward_nodes
        assert 5 not in dyn.result.forward_nodes
        assert 9 in dyn.result.forward_nodes

    def test_distributed_replay_identical(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        result, _stats = run_distributed_sd_broadcast(build, 1)
        assert result.forward_nodes == frozenset({1, 2, 3, 4, 6, 7, 9})
