"""Tests for series tables and summary statistics."""

import pytest

from repro.errors import ConfigurationError
from repro.metrics.confidence import ConfidenceInterval
from repro.metrics.series import ExperimentPoint, ExperimentSeries, SeriesTable
from repro.metrics.stats import linear_fit, summary


def ci(mean, hw=0.5):
    return ConfidenceInterval(mean=mean, half_width=hw, confidence=0.99,
                              samples=30)


class TestExperimentSeries:
    def test_add_and_query(self):
        s = ExperimentSeries(label="static")
        s.add(20, ci(10.0))
        s.add(40, ci(20.0))
        assert s.xs() == [20, 40]
        assert s.means() == [10.0, 20.0]
        assert s.as_dict() == {20: 10.0, 40: 20.0}

    def test_x_must_increase(self):
        s = ExperimentSeries(label="x")
        s.add(20, ci(1.0))
        with pytest.raises(ConfigurationError):
            s.add(20, ci(2.0))

    def test_point_mean(self):
        assert ExperimentPoint(x=1, estimate=ci(7.0)).mean == 7.0


class TestSeriesTable:
    def make_table(self):
        t = SeriesTable(title="Figure X", x_label="n")
        a = ExperimentSeries(label="alg-a")
        a.add(20, ci(10.0))
        a.add(40, ci(20.0))
        b = ExperimentSeries(label="alg-b")
        b.add(20, ci(12.0))
        t.add_series(a)
        t.add_series(b)
        return t

    def test_render_contains_all_cells(self):
        text = self.make_table().render()
        assert "Figure X" in text
        assert "alg-a" in text and "alg-b" in text
        assert "10.00" in text and "12.00" in text
        # Missing point rendered as '-'.
        assert "-" in text.splitlines()[-1]

    def test_render_with_ci(self):
        text = self.make_table().render(ci=True)
        assert "±" in text

    def test_get_series(self):
        t = self.make_table()
        assert t.get("alg-a").means() == [10.0, 20.0]
        with pytest.raises(KeyError):
            t.get("nope")

    def test_to_records(self):
        recs = self.make_table().to_records()
        assert len(recs) == 3
        assert recs[0]["series"] == "alg-a"
        assert recs[0]["n"] == 20
        assert recs[0]["mean"] == 10.0


class TestSummary:
    def test_basic(self):
        s = summary([4.0, 1.0, 3.0, 2.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0 and s.maximum == 4.0
        assert s.median == 2.5

    def test_odd_median(self):
        assert summary([3.0, 1.0, 2.0]).median == 2.0

    def test_single_value(self):
        s = summary([7.0])
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summary([])


class TestLinearFit:
    def test_perfect_line(self):
        slope, intercept, r2 = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)
        assert r2 == pytest.approx(1.0)

    def test_noisy_line_high_r2(self):
        import numpy as np

        rng = np.random.default_rng(0)
        xs = list(range(50))
        ys = [2.0 * x + 1.0 + rng.normal(0, 0.5) for x in xs]
        slope, _b, r2 = linear_fit(xs, ys)
        assert slope == pytest.approx(2.0, rel=0.05)
        assert r2 > 0.99

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            linear_fit([1], [1])
        with pytest.raises(ConfigurationError):
            linear_fit([1, 2], [1])
        with pytest.raises(ConfigurationError):
            linear_fit([2, 2], [1, 3])

    def test_constant_y(self):
        _s, _b, r2 = linear_fit([1, 2, 3], [5, 5, 5])
        assert r2 == 1.0
