"""Tests for the fault-sweep experiment driver."""

import pytest

from repro.faults.schedule import FaultSchedule, NodeDown
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.workload.faultsweep import (
    PROTOCOLS,
    eligible_nodes,
    run_fault_scenario,
    run_fault_sweep,
)

SWEEP_KW = dict(losses=(0.0, 0.2), n=25, average_degree=8.0, trials=4)


class TestEligibleNodes:
    def test_crash_of_cut_vertex_excludes_component(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert eligible_nodes(g, 0, {1}) == {0}
        assert eligible_nodes(g, 0, {2}) == {0, 1}
        assert eligible_nodes(g, 0, set()) == {0, 1, 2, 3}

    def test_crashed_source_reaches_nobody(self):
        g = Graph(edges=[(0, 1)])
        assert eligible_nodes(g, 0, {0}) == set()


class TestScenario:
    def test_metric_keys_cover_all_protocols(self):
        g = random_geometric_network(25, 8.0, rng=1).graph
        metrics = run_fault_scenario(g, 0, FaultSchedule(), rng=2)
        for proto in PROTOCOLS:
            for axis in ("delivery", "overhead", "latency"):
                assert f"{axis}/{proto}" in metrics

    def test_ideal_scenario_full_delivery(self):
        g = random_geometric_network(25, 8.0, rng=1).graph
        metrics = run_fault_scenario(g, 0, FaultSchedule(), rng=2)
        for proto in PROTOCOLS:
            assert metrics[f"delivery/{proto}"] == 1.0

    def test_fixed_schedule_is_deterministic(self):
        g = random_geometric_network(25, 8.0, rng=1).graph
        sched = FaultSchedule([NodeDown(time=1.0, node=5)])
        a = run_fault_scenario(g, 0, sched, loss=0.2, rng=3)
        b = run_fault_scenario(g, 0, sched, loss=0.2, rng=3)
        assert a == b


class TestSweep:
    def test_point_shape(self):
        points = run_fault_sweep(rng=0, **SWEEP_KW)
        assert [p.loss_probability for p in points] == [0.0, 0.2]
        for p in points:
            assert p.trials == 4
            assert set(p.delivery) == set(PROTOCOLS)
            assert set(p.overhead) == set(PROTOCOLS)
            assert set(p.latency) == set(PROTOCOLS)
            for v in p.delivery.values():
                assert 0.0 <= v <= 1.0

    def test_reliability_layer_dominates_under_loss(self):
        points = run_fault_sweep(rng=0, **SWEEP_KW)
        lossy = points[-1]
        assert lossy.delivery["reliable-si"] >= lossy.delivery["si"]
        assert lossy.delivery["reliable-sd"] >= lossy.delivery["sd"]
        # Reliability is paid for in transmissions.
        assert lossy.overhead["reliable-si"] > lossy.overhead["si"]

    def test_bit_deterministic_across_runs(self):
        a = run_fault_sweep(rng=7, **SWEEP_KW)
        b = run_fault_sweep(rng=7, **SWEEP_KW)
        assert a == b
        c = run_fault_sweep(rng=8, **SWEEP_KW)
        assert a != c

    @pytest.mark.parametrize("workers", [2, 3])
    def test_identical_across_parallel_worker_counts(self, workers):
        """Trial i consumes spawned child stream i whatever the pool size."""
        reference = run_fault_sweep(rng=7, parallel=2, **SWEEP_KW)
        assert run_fault_sweep(rng=7, parallel=workers, **SWEEP_KW) == \
            reference
