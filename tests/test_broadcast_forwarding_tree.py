"""Tests for the Pagani–Rossi style cluster-based forwarding tree."""

import pytest
from hypothesis import given, settings

from repro.broadcast.forwarding_tree import (
    broadcast_forwarding_tree,
    build_forwarding_tree,
)
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import NodeNotFoundError
from repro.graph.properties import is_connected_dominating_set
from repro.types import CoveragePolicy

from strategies import connected_graphs


class TestTreeStructure:
    def test_root_is_sources_head(self, fig3_clustering):
        tree = build_forwarding_tree(fig3_clustering, source=10)
        assert tree.root == 3  # head of node 10

    def test_spans_all_clusters(self, fig3_clustering):
        tree = build_forwarding_tree(fig3_clustering, source=1)
        assert tree.num_clusters == fig3_clustering.num_clusters
        assert fig3_clustering.clusterheads <= tree.nodes

    def test_parent_paths_are_real(self, fig3_clustering):
        g = fig3_clustering.graph
        tree = build_forwarding_tree(fig3_clustering, source=1)
        for child, (parent, path) in tree.parent.items():
            hops = [parent, *path, child]
            for a, b in zip(hops, hops[1:]):
                assert g.has_edge(a, b)

    def test_depths(self, fig3_clustering):
        tree = build_forwarding_tree(fig3_clustering, source=1)
        assert tree.depth_of(tree.root) == 0
        assert all(
            tree.depth_of(h) >= 1
            for h in fig3_clustering.clusterheads if h != tree.root
        )

    def test_tree_is_source_dependent(self, fig3_clustering):
        t1 = build_forwarding_tree(fig3_clustering, source=1)
        t4 = build_forwarding_tree(fig3_clustering, source=4)
        assert t1.root != t4.root

    def test_unknown_source(self, fig3_clustering):
        with pytest.raises(NodeNotFoundError):
            build_forwarding_tree(fig3_clustering, source=99)


class TestTreeBroadcast:
    def test_full_delivery_figure3(self, fig3_graph, fig3_clustering):
        result, tree = broadcast_forwarding_tree(fig3_clustering, source=1)
        assert result.delivered_to_all(fig3_graph)
        assert result.forward_nodes <= tree.nodes | {1}

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery_and_cds(self, graph):
        cs = lowest_id_clustering(graph)
        for policy in CoveragePolicy:
            result, tree = broadcast_forwarding_tree(
                cs, source=0, policy=policy
            )
            assert result.delivered_to_all(graph)
            assert is_connected_dominating_set(graph, tree.nodes)

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs())
    def test_tree_never_larger_than_static_backbone(self, graph):
        from repro.backbone.static_backbone import build_static_backbone

        cs = lowest_id_clustering(graph)
        tree = build_forwarding_tree(cs, source=0)
        static = build_static_backbone(cs)
        # The tree only realises a spanning arborescence of the cluster
        # graph, so it needs at most the static backbone's gateways.
        assert len(tree.nodes) <= static.size
