"""Chaos-harness helpers: the serve daemon as a disposable subprocess.

``tests/test_chaos_serve.py`` kills real daemons with ``SIGKILL`` and
checks nothing accepted is lost; this module owns the boring parts —
spawning ``python -m repro.cli serve`` with the right environment
(``src`` and ``tests`` on ``PYTHONPATH`` so the fault-injecting ``chaos``
experiment can resolve ``chaos_exec:make_chaos_trial``, and
``REPRO_SERVE_CHAOS=1`` to unlock it), waiting for the socket to accept,
and tearing daemons down without leaking processes.
"""

from __future__ import annotations

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
TESTS = Path(__file__).resolve().parent


def daemon_env() -> dict:
    """Subprocess environment: repro + chaos trials importable, chaos on."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC), str(TESTS)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    env["REPRO_SERVE_CHAOS"] = "1"
    return env


def start_daemon(root, sock, *, backend: str = "serial", parallel: int = 1,
                 extra: tuple = ()) -> subprocess.Popen:
    """Launch one serve daemon (callers pair this with ``wait_ready``)."""
    cmd = [
        sys.executable, "-m", "repro.cli", "serve",
        "--socket", str(sock), "--root", str(root),
        "--backend", backend, "--parallel", str(parallel), *extra,
    ]
    return subprocess.Popen(cmd, env=daemon_env(),
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE)


def wait_ready(sock, proc: subprocess.Popen, timeout: float = 30.0) -> None:
    """Block until the daemon's socket accepts (or it died trying)."""
    sock = Path(sock)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out, err = proc.communicate()
            raise AssertionError(
                f"daemon exited {proc.returncode} before becoming ready\n"
                f"stdout: {out.decode(errors='replace')}\n"
                f"stderr: {err.decode(errors='replace')}"
            )
        if sock.exists():
            try:
                probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                probe.connect(str(sock))
                probe.close()
                return
            except OSError:
                pass
        time.sleep(0.05)
    raise AssertionError(f"daemon socket {sock} never became ready")


def sigkill(proc: subprocess.Popen) -> None:
    """The chaos hammer: no atexit, no drain, no flushing grace."""
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)


def terminate(proc: subprocess.Popen, timeout: float = 30.0) -> int:
    """Graceful SIGTERM teardown (for scenarios that end politely)."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=10)
    return proc.returncode


def reap(proc: subprocess.Popen) -> None:
    """Last-resort cleanup so a failing test never leaks a daemon."""
    if proc.poll() is None:
        proc.kill()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            pass
