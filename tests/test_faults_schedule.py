"""Tests for declarative fault schedules."""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.faults.schedule import (
    DuplicationWindow,
    FaultSchedule,
    LinkDown,
    LinkUp,
    LossWindow,
    NodeDown,
    NodeUp,
    Partition,
    random_schedule,
)
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network


def sample_schedule() -> FaultSchedule:
    return FaultSchedule([
        NodeDown(time=2.0, node=3),
        NodeUp(time=6.0, node=3),
        LinkDown(time=1.0, u=0, v=1),
        LinkUp(time=4.0, u=0, v=1),
        Partition(time=3.0, nodes=frozenset({4, 5}), duration=2.0),
        Partition(time=9.0, nodes=frozenset({6})),
        LossWindow(time=0.5, probability=0.4, duration=3.0),
        DuplicationWindow(time=5.0, probability=0.2, duration=1.0),
    ])


class TestValidation:
    def test_events_sorted_by_time(self):
        sched = sample_schedule()
        times = [e.time for e in sched]
        assert times == sorted(times)

    def test_stable_order_at_equal_times(self):
        a = NodeDown(time=1.0, node=1)
        b = NodeDown(time=1.0, node=2)
        assert FaultSchedule([a, b]).events == (a, b)
        assert FaultSchedule([b, a]).events == (b, a)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError, match="time"):
            FaultSchedule([NodeDown(time=-1.0, node=0)])

    def test_bad_window_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSchedule([LossWindow(time=0.0, probability=1.5,
                                      duration=1.0)])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultSchedule([LossWindow(time=0.0, probability=0.5,
                                      duration=0.0)])
        with pytest.raises(ConfigurationError, match="duration"):
            FaultSchedule([Partition(time=0.0, nodes=frozenset({1}),
                                     duration=-1.0)])

    def test_self_loop_link_rejected(self):
        with pytest.raises(Exception):
            FaultSchedule([LinkDown(time=0.0, u=2, v=2)])

    def test_validate_against_unknown_node(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(ConfigurationError, match="unknown node 9"):
            FaultSchedule([NodeDown(time=0.0, node=9)]).validate_against(g)


class TestDerived:
    def test_horizon_includes_window_ends(self):
        sched = sample_schedule()
        # The infinite partition fires (a state change) at t=9; its never-
        # arriving heal adds nothing beyond that.
        assert sched.horizon == 9.0
        without_inf = FaultSchedule(
            [e for e in sched
             if not (isinstance(e, Partition) and math.isinf(e.duration))]
        )
        # Finite ends count: NodeUp at 6 and the duplication window end 5+1
        # outlast the partition heal at 3+2 and the loss window end 0.5+3.
        assert without_inf.horizon == 6.0

    def test_crashed_nodes_tracks_recovery(self):
        sched = FaultSchedule([
            NodeDown(time=1.0, node=1),
            NodeDown(time=2.0, node=2),
            NodeUp(time=3.0, node=1),
        ])
        assert sched.crashed_nodes() == frozenset({2})

    def test_empty_schedule(self):
        sched = FaultSchedule()
        assert len(sched) == 0
        assert sched.horizon == 0.0
        assert sched.crashed_nodes() == frozenset()


class TestSpecRoundTrip:
    def test_roundtrip_through_json(self):
        sched = sample_schedule()
        doc = json.loads(json.dumps(sched.to_spec()))
        assert FaultSchedule.from_spec(doc) == sched

    def test_infinite_partition_serialises_as_null(self):
        sched = FaultSchedule([Partition(time=0.0, nodes=frozenset({1}))])
        spec = sched.to_spec()
        assert spec["events"][0]["duration"] is None
        restored = FaultSchedule.from_spec(spec)
        assert math.isinf(restored.events[0].duration)

    def test_wrong_format_rejected(self):
        with pytest.raises(ConfigurationError, match="not a repro"):
            FaultSchedule.from_spec({"format": "other"})

    def test_wrong_version_rejected(self):
        spec = sample_schedule().to_spec()
        spec["version"] = 99
        with pytest.raises(ConfigurationError, match="version"):
            FaultSchedule.from_spec(spec)

    def test_malformed_event_rejected(self):
        spec = {"format": "repro-fault-schedule", "version": 1,
                "events": [{"kind": "node-down", "time": 0.0}]}
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultSchedule.from_spec(spec)

    def test_unknown_kind_rejected(self):
        spec = {"format": "repro-fault-schedule", "version": 1,
                "events": [{"kind": "meteor-strike", "time": 0.0}]}
        with pytest.raises(ConfigurationError, match="malformed"):
            FaultSchedule.from_spec(spec)


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        g = random_geometric_network(30, 8.0, rng=0).graph
        kwargs = dict(crash_fraction=0.2, recovery_fraction=0.5,
                      link_flap_fraction=0.1, loss_windows=2,
                      duplication_windows=1)
        assert random_schedule(g, rng=7, **kwargs) == \
            random_schedule(g, rng=7, **kwargs)
        assert random_schedule(g, rng=7, **kwargs) != \
            random_schedule(g, rng=8, **kwargs)

    def test_protected_nodes_never_crash(self):
        g = random_geometric_network(30, 8.0, rng=0).graph
        protect = set(g.nodes()[:10])
        sched = random_schedule(g, crash_fraction=0.5, protect=protect,
                                rng=1)
        crashed = {e.node for e in sched if isinstance(e, NodeDown)}
        assert crashed and not (crashed & protect)

    def test_crash_fraction_out_of_range(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(ConfigurationError, match="crash_fraction"):
            random_schedule(g, crash_fraction=1.5)

    def test_references_valid_against_source_graph(self):
        g = random_geometric_network(25, 6.0, rng=2).graph
        sched = random_schedule(g, crash_fraction=0.3,
                                link_flap_fraction=0.2, rng=3)
        sched.validate_against(g)  # must not raise
