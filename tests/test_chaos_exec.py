"""Kill/resume chaos tests: SIGKILL a journaled run, resume, compare bits.

These drive ``tests/chaos_exec.py`` as a real subprocess — the parent
process of a journaled run dies with ``SIGKILL`` (no atexit, no flushing
grace) and a resumed invocation must finish with estimates byte-identical
to an undisturbed reference run.  Subprocess startup makes them slow, so
the whole module is ``slow``-marked and runs in the ``make chaos`` /
CI ``chaos-smoke`` lane rather than the default suite.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.slow

DRIVER = Path(__file__).resolve().parent / "chaos_exec.py"
SRC = Path(__file__).resolve().parent.parent / "src"


def driver_cmd(*extra):
    return [sys.executable, str(DRIVER), *extra]


def driver_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def run_driver(*extra, check=True):
    proc = subprocess.run(driver_cmd(*extra), env=driver_env(),
                          capture_output=True, text=True, timeout=120)
    if check and proc.returncode != 0:
        raise AssertionError(
            f"driver failed ({proc.returncode}): {proc.stderr}"
        )
    return proc


def reference_estimates(tmp_path, *, trials, seed):
    out = tmp_path / "reference.json"
    marker = tmp_path / "ref-markers"
    marker.mkdir()
    run_driver("--no-journal", "--journal", str(tmp_path / "unused.jsonl"),
               "--marker-dir", str(marker), "--trials", str(trials),
               "--seed", str(seed), "--out", str(out))
    return out.read_bytes()


class TestSelfKillResume:
    """The run SIGKILLs itself mid-trial; a resume finishes the job."""

    def test_self_sigkill_and_resume_is_bit_identical(self, tmp_path):
        trials, seed = 12, 7
        reference = reference_estimates(tmp_path, trials=trials, seed=seed)

        journal = tmp_path / "run.jsonl"
        marker = tmp_path / "markers"
        marker.mkdir()
        first = run_driver(
            "--journal", str(journal), "--marker-dir", str(marker),
            "--trials", str(trials), "--seed", str(seed),
            "--crash-index", "9", "--out", str(tmp_path / "never.json"),
            check=False,
        )
        assert first.returncode == -signal.SIGKILL
        assert not (tmp_path / "never.json").exists()
        # Folding (and journaling) is per wave: the first 8-trial wave is
        # durable, the second wave died at trial 9 before it could fold.
        assert len(journal.read_text().splitlines()) == 1 + 8

        out = tmp_path / "resumed.json"
        run_driver(
            "--journal", str(journal), "--marker-dir", str(marker),
            "--trials", str(trials), "--seed", str(seed),
            "--crash-index", "9", "--resume", "--out", str(out),
        )
        assert out.read_bytes() == reference

    def test_rerun_without_resume_is_refused(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        marker = tmp_path / "markers"
        marker.mkdir()
        run_driver("--journal", str(journal), "--marker-dir", str(marker),
                   "--trials", "4", "--seed", "1")
        second = run_driver(
            "--journal", str(journal), "--marker-dir", str(marker),
            "--trials", "4", "--seed", "1", check=False,
        )
        assert second.returncode != 0
        assert "resume" in second.stderr


class TestExternalKillResume:
    """An outside SIGKILL strikes mid-run; any backend resumes the run."""

    TRIALS = 12
    SEED = 19

    @pytest.mark.parametrize("backend,parallel", [
        ("serial", 1), ("thread", 2), ("process", 2),
    ])
    def test_external_sigkill_and_resume(self, tmp_path, backend, parallel):
        reference = reference_estimates(tmp_path, trials=self.TRIALS,
                                        seed=self.SEED)
        journal = tmp_path / "run.jsonl"
        marker = tmp_path / "markers"
        marker.mkdir()
        proc = subprocess.Popen(
            driver_cmd("--journal", str(journal),
                       "--marker-dir", str(marker),
                       "--trials", str(self.TRIALS),
                       "--seed", str(self.SEED),
                       "--backend", backend, "--parallel", str(parallel),
                       "--trial-sleep", "0.25"),
            env=driver_env(), stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Kill once the journal proves the run is mid-stream: some
            # trials durable, more still to come.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    pytest.fail("driver finished before it could be killed; "
                                "raise --trial-sleep")
                if journal.exists() and \
                        len(journal.read_text().splitlines()) >= 3:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("journal never accumulated records")
            proc.send_signal(signal.SIGKILL)
            assert proc.wait(timeout=30) == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        recorded = len(journal.read_text().splitlines()) - 1
        assert 0 < recorded < self.TRIALS

        out = tmp_path / "resumed.json"
        run_driver(
            "--journal", str(journal), "--marker-dir", str(marker),
            "--trials", str(self.TRIALS), "--seed", str(self.SEED),
            "--backend", backend, "--parallel", str(parallel),
            "--resume", "--out", str(out),
        )
        assert out.read_bytes() == reference
