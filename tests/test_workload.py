"""Tests for the experiment harness (config, trials, figure drivers)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SampleBudgetExceededError
from repro.workload.config import PaperEnvironment
from repro.workload.experiments import (
    DYNAMIC_25,
    DYNAMIC_3,
    FLOODING,
    MO_CDS,
    STATIC_25,
    STATIC_3,
    run_fig6,
    run_fig7,
    run_fig8,
    run_flooding_comparison,
)
from repro.workload.trials import paired_trials

TINY = PaperEnvironment(
    ns=(15, 25), degrees=(6.0,), min_samples=6, max_samples=6, target=0.9,
    seed=99,
)


class TestPaperEnvironment:
    def test_paper_defaults(self):
        env = PaperEnvironment.paper()
        assert env.ns == (20, 40, 60, 80, 100)
        assert env.degrees == (6.0, 18.0)
        assert env.confidence == 0.99 and env.target == 0.05

    def test_quick_bounds_trials(self):
        env = PaperEnvironment.quick()
        assert env.min_samples == env.max_samples

    def test_scaled(self):
        env = PaperEnvironment.paper().scaled(ns=(10,), seed=1)
        assert env.ns == (10,) and env.seed == 1
        assert env.degrees == (6.0, 18.0)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(ns=()), dict(ns=(1,)), dict(degrees=()), dict(degrees=(0.0,))],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            PaperEnvironment(**kwargs)


class TestPairedTrials:
    def test_converges_on_constant_metrics(self):
        outcome = paired_trials(
            lambda gen: {"a": 5.0, "b": 7.0},
            min_samples=4, max_samples=100, rng=0,
        )
        assert outcome.converged
        assert outcome.trials == 4
        assert outcome.estimates["a"].mean == 5.0
        assert outcome.estimates["b"].mean == 7.0

    def test_budget_exhaustion_nonstrict(self):
        def noisy(gen):
            return {"x": float(gen.normal(0.5, 100.0))}

        outcome = paired_trials(noisy, min_samples=3, max_samples=5, rng=1)
        assert not outcome.converged
        assert outcome.trials == 5

    def test_budget_exhaustion_strict_raises(self):
        def noisy(gen):
            return {"x": float(gen.normal(0.5, 100.0))}

        with pytest.raises(SampleBudgetExceededError):
            paired_trials(noisy, min_samples=3, max_samples=5, rng=1,
                          strict=True)

    def test_reproducible(self):
        def trial(gen):
            return {"v": float(gen.random())}

        a = paired_trials(trial, min_samples=5, max_samples=5, rng=3)
        b = paired_trials(trial, min_samples=5, max_samples=5, rng=3)
        assert a.estimates["v"].mean == b.estimates["v"].mean


class TestParallelTrials:
    @staticmethod
    def _trial(gen):
        return {"v": float(gen.random()), "w": float(gen.normal())}

    def test_parallel_deterministic_for_fixed_seed(self):
        a = paired_trials(self._trial, min_samples=8, max_samples=8, rng=3,
                          parallel=4)
        b = paired_trials(self._trial, min_samples=8, max_samples=8, rng=3,
                          parallel=4)
        assert a.estimates["v"] == b.estimates["v"]
        assert a.estimates["w"] == b.estimates["w"]

    def test_worker_count_does_not_change_estimates(self):
        # Trial i draws from child stream i regardless of batch partition,
        # and results fold in trial order — so for a fixed trial count the
        # estimates are identical across worker counts.
        a = paired_trials(self._trial, min_samples=8, max_samples=8, rng=3,
                          parallel=2)
        b = paired_trials(self._trial, min_samples=8, max_samples=8, rng=3,
                          parallel=8)
        assert a.trials == b.trials == 8
        assert a.estimates["v"] == b.estimates["v"]
        assert a.estimates["w"] == b.estimates["w"]

    def test_parallel_one_is_the_serial_path(self):
        a = paired_trials(self._trial, min_samples=6, max_samples=6, rng=5)
        b = paired_trials(self._trial, min_samples=6, max_samples=6, rng=5,
                          parallel=1)
        assert a.estimates == b.estimates

    def test_batches_respect_max_samples(self):
        counted = []

        def trial(gen):
            counted.append(1)
            return {"x": float(gen.normal(0.0, 100.0))}

        outcome = paired_trials(trial, min_samples=3, max_samples=5, rng=1,
                                parallel=4)
        assert outcome.trials == 5
        assert len(counted) == 5
        assert not outcome.converged

    def test_strict_raises_in_parallel_mode(self):
        def noisy(gen):
            return {"x": float(gen.normal(0.5, 100.0))}

        with pytest.raises(SampleBudgetExceededError):
            paired_trials(noisy, min_samples=3, max_samples=6, rng=1,
                          parallel=3, strict=True)

    def test_invalid_parallel_rejected(self):
        with pytest.raises(ValueError):
            paired_trials(self._trial, parallel=0)


class TestFigureDrivers:
    def test_fig6_labels_and_shape(self):
        tables = run_fig6(TINY)
        table = tables[6.0]
        labels = {s.label for s in table.series}
        assert labels == {STATIC_25, STATIC_3, MO_CDS}
        for s in table.series:
            assert s.xs() == [15.0, 25.0]
            # CDS sizes grow with n.
            assert s.means()[0] < s.means()[1]

    def test_fig6_static_close_to_mo(self):
        table = run_fig6(TINY)[6.0]
        static = table.get(STATIC_25).as_dict()
        mo = table.get(MO_CDS).as_dict()
        for x in static:
            assert static[x] <= mo[x] + 1.0  # paired trials: close, static <=

    def test_fig7_dynamic_below_mo(self):
        table = run_fig7(TINY)[6.0]
        dyn = table.get(DYNAMIC_25).as_dict()
        mo = table.get(MO_CDS).as_dict()
        for x in dyn:
            assert dyn[x] <= mo[x]

    def test_fig8_dynamic_below_static(self):
        table = run_fig8(TINY)[6.0]
        dyn = table.get(DYNAMIC_25).as_dict()
        static = table.get(STATIC_25).as_dict()
        for x in dyn:
            assert dyn[x] <= static[x] + 0.5

    def test_fig8_policies_close(self):
        table = run_fig8(TINY)[6.0]
        d25 = table.get(DYNAMIC_25).as_dict()
        d3 = table.get(DYNAMIC_3).as_dict()
        for x in d25:
            assert d25[x] == pytest.approx(d3[x], rel=0.25, abs=2.0)

    def test_flooding_dominates_everything(self):
        tables = run_flooding_comparison(TINY)
        table = tables[6.0]
        flood = table.get(FLOODING).as_dict()
        static = table.get(STATIC_25).as_dict()
        for x in flood:
            # Blind flooding forwards everywhere: n nodes.
            assert flood[x] == pytest.approx(x)
            assert static[x] < flood[x]

    def test_multiple_degrees_produce_multiple_tables(self):
        env = TINY.scaled(degrees=(6.0, 10.0))
        tables = run_fig6(env)
        assert set(tables) == {6.0, 10.0}

    def test_reproducibility(self):
        a = run_fig6(TINY)[6.0].get(STATIC_25).means()
        b = run_fig6(TINY)[6.0].get(STATIC_25).means()
        assert a == b
