"""Tests for node placement strategies."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.area import Area
from repro.geometry.placement import (
    chain_placement,
    grid_placement,
    hotspot_placement,
    uniform_placement,
)


class TestUniform:
    def test_shape_and_bounds(self):
        pts = uniform_placement(200, Area(50, 20), rng=0)
        assert pts.shape == (200, 2)
        assert (pts[:, 0] >= 0).all() and (pts[:, 0] <= 50).all()
        assert (pts[:, 1] >= 0).all() and (pts[:, 1] <= 20).all()

    def test_deterministic_with_seed(self):
        assert np.allclose(uniform_placement(10, rng=5), uniform_placement(10, rng=5))

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            uniform_placement(0)

    def test_spread_over_area(self):
        pts = uniform_placement(500, Area(100, 100), rng=3)
        # Mean should be near the centre for a genuinely uniform draw.
        assert np.allclose(pts.mean(axis=0), [50, 50], atol=6)


class TestGrid:
    def test_exact_lattice(self):
        pts = grid_placement(9, Area(30, 30))
        assert pts.shape == (9, 2)
        xs = sorted(set(np.round(pts[:, 0], 6)))
        assert xs == [5.0, 15.0, 25.0]

    def test_non_square_count(self):
        pts = grid_placement(7, Area(10, 10))
        assert pts.shape == (7, 2)

    def test_jitter_stays_in_area(self):
        area = Area(10, 10)
        pts = grid_placement(25, area, jitter=0.9, rng=0)
        assert area.contains(pts).all()

    def test_negative_jitter_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_placement(4, jitter=-0.1)


class TestChain:
    def test_spacing(self):
        pts = chain_placement(5, 2.0, Area(100, 100))
        gaps = np.linalg.norm(np.diff(pts, axis=0), axis=1)
        assert np.allclose(gaps, 2.0)

    def test_too_long_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            chain_placement(1000, 5.0, Area(10, 10))

    def test_rejects_non_positive_spacing(self):
        with pytest.raises(ConfigurationError):
            chain_placement(5, 0.0)


class TestHotspot:
    def test_in_area(self):
        area = Area(40, 40)
        pts = hotspot_placement(120, area, hotspots=2, rng=7)
        assert pts.shape == (120, 2)
        assert area.contains(pts).all()

    def test_clustered_more_than_uniform(self):
        area = Area(100, 100)
        hot = hotspot_placement(300, area, hotspots=2, spread=0.03, rng=0)
        uni = uniform_placement(300, area, rng=0)
        # Mean nearest-centroid dispersion is smaller for hotspot placement.
        assert hot.std(axis=0).mean() < uni.std(axis=0).mean()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            hotspot_placement(10, hotspots=0)
        with pytest.raises(ConfigurationError):
            hotspot_placement(10, spread=0.0)
