"""Tests for churn metrics and mobility sessions."""

import numpy as np
import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.state import ClusterStructure
from repro.errors import ConfigurationError
from repro.geometry.mobility import MobilityModel, RandomWalk, RandomWaypoint
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.maintenance.session import MobilitySession
from repro.maintenance.stability import backbone_churn, cluster_churn


def clustering_of(edges, extra_nodes=()):
    g = Graph(edges=edges)
    for v in extra_nodes:
        g.add_node(v)
    return lowest_id_clustering(g)


class TestClusterChurn:
    def test_identical_snapshots_zero_churn(self, fig3_clustering):
        churn = cluster_churn(fig3_clustering, fig3_clustering)
        assert churn.role_change_count == 0
        assert churn.reassigned_members == frozenset()
        assert churn.churn_rate == 0.0

    def test_head_flip_detected(self):
        before = clustering_of([(1, 2), (2, 3)])  # heads {1, 3}
        after_structure = clustering_of([(1, 2), (1, 3)])  # head {1} only
        churn = cluster_churn(before, after_structure)
        assert 3 in churn.heads_lost
        assert churn.role_change_count >= 1

    def test_member_reassignment(self):
        # 5 moves from cluster 1 to cluster 2 while staying a member.
        g_before = Graph(edges=[(1, 5), (2, 6), (1, 3), (2, 4)])
        g_after = Graph(edges=[(2, 5), (2, 6), (1, 3), (2, 4)])
        g_after.add_node(1)
        before = lowest_id_clustering(g_before)
        after = lowest_id_clustering(g_after)
        churn = cluster_churn(before, after)
        assert 5 in churn.reassigned_members

    def test_mismatched_node_sets_rejected(self, fig3_clustering):
        other = clustering_of([(0, 1)])
        with pytest.raises(ConfigurationError):
            cluster_churn(fig3_clustering, other)


class TestBackboneChurn:
    def test_no_change(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        churn = backbone_churn(bb, bb)
        assert churn.gateway_turnover == 0
        assert churn.heads_with_new_selection == frozenset()
        assert churn.resignalling_rate == 0.0

    def test_gateway_turnover_detected(self):
        net = random_geometric_network(25, 8.0, rng=5)
        cs = lowest_id_clustering(net.graph)
        bb = build_static_backbone(cs)
        moved = net.moved(
            RandomWalk(speed=6.0, area=net.area, rng=1).step(
                net.position_array(), 1.0
            )
        )
        cs2 = lowest_id_clustering(moved.graph)
        bb2 = build_static_backbone(cs2)
        churn = backbone_churn(bb, bb2)
        # Movement of this magnitude virtually always changes something.
        assert (
            churn.gateway_turnover > 0
            or churn.heads_with_new_selection
            or cs.clusterheads != cs2.clusterheads
        )


class TestMobilitySession:
    def test_session_steps_and_history(self):
        net = random_geometric_network(30, 10.0, rng=11)
        session = MobilitySession(
            net, RandomWaypoint(speed_range=(0.5, 1.5), area=net.area, rng=2)
        )
        reports = session.run(5)
        assert len(reports) == 5
        assert session.history == reports
        assert reports[-1].time == pytest.approx(5.0)

    def test_reports_carry_churn(self):
        net = random_geometric_network(30, 10.0, rng=12)
        session = MobilitySession(
            net, RandomWalk(speed=3.0, area=net.area, rng=3)
        )
        report = session.step()
        assert report.cluster_churn is not None
        assert report.backbone_churn is not None
        assert report.link_changes >= 0

    def test_stationary_model_no_churn(self):
        net = random_geometric_network(25, 8.0, rng=13)
        session = MobilitySession(
            net, RandomWalk(speed=0.0, area=net.area, rng=4)
        )
        report = session.step()
        assert report.link_changes == 0
        assert report.cluster_churn.churn_rate == 0.0
        assert report.backbone_churn.gateway_turnover == 0
        assert report.connected

    def test_faster_movement_more_churn(self):
        def total_churn(speed, seed=21):
            net = random_geometric_network(40, 10.0, rng=seed)
            session = MobilitySession(
                net, RandomWalk(speed=speed, area=net.area, rng=seed)
            )
            return sum(r.link_changes for r in session.run(8))

        assert total_churn(0.5) < total_churn(8.0)


class Exile(MobilityModel):
    """Teleport chosen rows out of radio range; everyone else holds still.

    A degenerate mobility model for adverse-maintenance tests: exiled
    nodes keep existing (the session's node set is fixed) but lose every
    incident link at once — a clusterhead vanishing outright rather than
    drifting away one edge at a time.
    """

    def __init__(self, rows, area):
        super().__init__(area, rng=0)
        self.rows = tuple(rows)

    def step(self, positions, dt):
        pts = np.array(positions, dtype=float)
        for offset, row in enumerate(self.rows):
            # Far from everyone, including the other exiles.
            pts[row] = (1e6 + 1e3 * offset, 1e6)
        return pts


class TestAdverseMaintenance:
    """Disconnected snapshots and clusterheads vanishing outright."""

    def make_sessions(self, rows, seed=17, n=30):
        """A full-recompute and an incremental session over one motion."""
        net = random_geometric_network(n, 10.0, rng=seed)
        order = net.graph.nodes()
        victims = [order.index(v) for v in rows]
        return (
            MobilitySession(net, Exile(victims, net.area)),
            MobilitySession(net, Exile(victims, net.area), incremental=True),
            net,
        )

    def test_disconnected_snapshot_reported_not_fatal(self):
        net = random_geometric_network(30, 10.0, rng=17)
        head = min(lowest_id_clustering(net.graph).clusterheads)
        full, inc, _ = self.make_sessions([head])
        for session in (full, inc):
            report = session.step()
            assert not report.connected
            # Churn is still accounted and structures still derived.
            assert report.cluster_churn is not None
            assert report.backbone_churn is not None
            assert set(report.structure.head_of) == set(net.graph.nodes())

    def test_vanished_clusterhead_becomes_isolated_self_head(self):
        net = random_geometric_network(30, 10.0, rng=17)
        head = min(lowest_id_clustering(net.graph).clusterheads)
        full, inc, _ = self.make_sessions([head])
        for session in (full, inc):
            report = session.step()
            # The exile keeps its (lowest) id, so it stays a head — but of
            # a singleton cluster, and it can no longer sit on the backbone
            # as anyone's gateway.
            assert report.structure.head_of[head] == head
            assert report.structure.members(head) == frozenset()
            assert head not in report.backbone.gateways

    def test_incremental_matches_full_after_vanishing(self):
        heads = sorted(lowest_id_clustering(
            random_geometric_network(30, 10.0, rng=17).graph).clusterheads)
        # Kill two heads at once: batch edge removal through the repair
        # cascade, then a second tick with no further motion (idempotence).
        full, inc, _ = self.make_sessions(heads[:2])
        for _ in range(2):
            a = full.step()
            b = inc.step()
            assert b.structure.head_of == a.structure.head_of
            assert b.backbone.nodes == a.backbone.nodes
            assert b.backbone.gateways == a.backbone.gateways
            assert b.connected == a.connected

    def test_incremental_survives_repeated_disconnection(self):
        # Alternate exile ticks with stationary ticks; the incremental
        # session must track the from-scratch derivation throughout.
        net = random_geometric_network(25, 8.0, rng=19)
        victim = max(net.graph.nodes())
        order = net.graph.nodes()
        inc = MobilitySession(
            net, Exile([order.index(victim)], net.area), incremental=True
        )
        for _ in range(3):
            report = inc.step()
            scratch = lowest_id_clustering(report.network.graph)
            assert report.structure.head_of == scratch.head_of
            assert report.backbone.nodes == \
                build_static_backbone(scratch).nodes
