"""Tests for SI-CDS broadcasting."""

import pytest
from hypothesis import given, settings

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import NodeNotFoundError

from strategies import connected_graphs


class TestFigure3Illustration:
    def test_nine_forwarders_from_source_1(self, fig3_graph, fig3_clustering):
        # "In total, 9 nodes (nodes 1..9) will forward the packets."
        bb = build_static_backbone(fig3_clustering)
        r = broadcast_si(fig3_graph, bb, source=1)
        assert r.forward_nodes == frozenset(range(1, 10))
        assert r.num_forward_nodes == 9

    def test_source_outside_backbone_also_forwards(self, fig3_graph,
                                                   fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        r = broadcast_si(fig3_graph, bb, source=10)
        assert 10 in r.forward_nodes
        assert r.num_forward_nodes == 10  # backbone 9 + source

    def test_full_delivery(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        for src in fig3_graph.nodes():
            assert broadcast_si(fig3_graph, bb, src).delivered_to_all(fig3_graph)


class TestGenericCds:
    def test_accepts_bare_node_set(self, fig3_graph):
        # Whole graph as CDS behaves like flooding.
        r = broadcast_si(fig3_graph, fig3_graph.nodes(), source=1)
        assert r.num_forward_nodes == fig3_graph.num_nodes

    def test_algorithm_label_from_backbone(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        r = broadcast_si(fig3_graph, bb, source=1)
        assert "static-backbone" in r.algorithm

    def test_unknown_source(self, fig3_graph):
        with pytest.raises(NodeNotFoundError):
            broadcast_si(fig3_graph, [1], source=77)


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery_any_source(self, graph):
        cs = lowest_id_clustering(graph)
        bb = build_static_backbone(cs)
        for src in (0, graph.num_nodes - 1):
            r = broadcast_si(graph, bb, src)
            assert r.delivered_to_all(graph)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_forward_count_is_cds_plus_source(self, graph):
        # In a connected network, every CDS node receives and forwards.
        cs = lowest_id_clustering(graph)
        bb = build_mo_cds(cs)
        src = graph.num_nodes - 1
        r = broadcast_si(graph, bb, src)
        assert r.forward_nodes == bb.nodes | {src}

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs())
    def test_reception_times_monotone_along_forwarding(self, graph):
        cs = lowest_id_clustering(graph)
        bb = build_static_backbone(cs)
        r = broadcast_si(graph, bb, 0)
        for v, t in r.reception_time.items():
            assert t <= graph.num_nodes
