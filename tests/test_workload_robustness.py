"""Tests for the robustness (lossy channel) experiment."""

import pytest

from repro.workload.robustness import run_robustness_sweep


@pytest.fixture(scope="module")
def sweep():
    return run_robustness_sweep(
        losses=(0.0, 0.15, 0.3), n=40, average_degree=10.0, trials=6, rng=1
    )


class TestRobustnessSweep:
    def test_point_per_loss(self, sweep):
        assert [p.loss_probability for p in sweep] == [0.0, 0.15, 0.3]

    def test_ideal_channel_full_delivery(self, sweep):
        ideal = sweep[0]
        for proto in ("flooding", "static", "dynamic"):
            assert ideal.delivery[proto] == pytest.approx(1.0)

    def test_passive_only_on_ideal_point(self, sweep):
        assert "passive" in sweep[0].delivery
        assert "passive" not in sweep[-1].delivery

    def test_delivery_degrades_with_loss(self, sweep):
        for proto in ("static", "dynamic"):
            assert sweep[-1].delivery[proto] <= sweep[0].delivery[proto]

    def test_flooding_most_robust(self, sweep):
        # Maximum redundancy buys maximum loss tolerance.
        worst = sweep[-1]
        assert worst.delivery["flooding"] >= worst.delivery["static"] - 1e-9
        assert worst.delivery["flooding"] >= worst.delivery["dynamic"] - 0.05

    def test_forward_counts_recorded(self, sweep):
        ideal = sweep[0]
        assert ideal.forwards["flooding"] == pytest.approx(40.0)
        assert ideal.forwards["dynamic"] < ideal.forwards["flooding"]
