"""Tests for the ASCII renderer."""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import ConfigurationError
from repro.graph.generators import random_geometric_network
from repro.viz.ascii_art import render_backbone, render_network


@pytest.fixture
def net():
    return random_geometric_network(25, 8.0, rng=9)


class TestRenderNetwork:
    def test_dimensions(self, net):
        text = render_network(net, width=40, height=12)
        lines = text.splitlines()
        # Trailing all-blank rows are stripped by the renderer.
        assert 1 <= len(lines) <= 12
        assert max(len(line) for line in lines) <= 40

    def test_every_node_drawn(self, net):
        text = render_network(net, width=120, height=60)
        # With a large grid, collisions are unlikely; most nodes visible.
        assert text.count(".") >= net.num_nodes - 3

    def test_too_small_grid_rejected(self, net):
        with pytest.raises(ConfigurationError):
            render_network(net, width=4, height=2)


class TestRenderBackbone:
    def test_glyph_counts(self, net):
        cs = lowest_id_clustering(net.graph)
        bb = build_static_backbone(cs)
        text = render_backbone(net, cs, bb.gateways, width=120, height=60)
        assert text.count("#") <= len(cs.clusterheads)
        assert text.count("#") >= 1
        assert text.count("o") <= len(bb.gateways)

    def test_head_glyph_wins_collisions(self, net):
        cs = lowest_id_clustering(net.graph)
        tiny = render_backbone(net, cs, width=8, height=4)
        assert "#" in tiny

    def test_legend(self, net):
        cs = lowest_id_clustering(net.graph)
        text = render_backbone(net, cs, label_ids=True)
        assert text.splitlines()[-1].startswith("[")
        assert "0#" in text or "0." in text
