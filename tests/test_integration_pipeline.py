"""End-to-end pipeline tests over the paper's simulation environment."""

import numpy as np
import pytest

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.backbone.verify import verify_backbone
from repro.broadcast.delivery import check_full_delivery
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.validate import validate_cluster_structure
from repro.graph.generators import random_geometric_network
from repro.types import CoveragePolicy, PruningLevel


@pytest.mark.parametrize("n,d", [(20, 6.0), (60, 6.0), (40, 18.0), (100, 18.0)])
def test_full_pipeline_paper_environment(n, d):
    """Generate -> cluster -> both backbones -> all broadcasts -> verify."""
    rng = np.random.default_rng(n * 1000 + int(d))
    net = random_geometric_network(n, d, rng=rng)
    clustering = lowest_id_clustering(net.graph)
    validate_cluster_structure(clustering, lowest_id=True)

    static25 = build_static_backbone(clustering, CoveragePolicy.TWO_FIVE_HOP)
    static3 = build_static_backbone(clustering, CoveragePolicy.THREE_HOP)
    mo = build_mo_cds(clustering)
    for bb in (static25, static3, mo):
        verify_backbone(bb)
        assert len(clustering.clusterheads) <= bb.size <= n

    source = int(rng.choice(net.graph.nodes()))
    flood = blind_flooding(net.graph, source)
    si = broadcast_si(net.graph, static25, source)
    dyn = broadcast_sd(clustering, source, pruning=PruningLevel.FULL)
    for result in (flood, si, dyn.result):
        check_full_delivery(net.graph, result)

    # The paper's headline ordering on a typical sample.
    assert dyn.result.num_forward_nodes <= si.num_forward_nodes + 2
    assert si.num_forward_nodes <= flood.num_forward_nodes


def test_forward_counts_scale_with_n():
    sizes = []
    for n in (20, 60, 100):
        net = random_geometric_network(n, 6.0, rng=n)
        clustering = lowest_id_clustering(net.graph)
        dyn = broadcast_sd(clustering, source=0)
        sizes.append(dyn.result.num_forward_nodes)
    assert sizes[0] < sizes[1] < sizes[2]


def test_dense_network_fewer_relative_forwards():
    # Backbones pay off more in dense networks (broadcast storm motivation).
    def fraction(d):
        vals = []
        for seed in range(5):
            net = random_geometric_network(60, d, rng=seed)
            clustering = lowest_id_clustering(net.graph)
            dyn = broadcast_sd(clustering, source=0)
            vals.append(dyn.result.num_forward_nodes / 60.0)
        return float(np.mean(vals))

    assert fraction(18.0) < fraction(6.0)


def test_shuffled_ids_preserve_all_guarantees():
    net = random_geometric_network(50, 10.0, rng=5, shuffle_ids=True)
    clustering = lowest_id_clustering(net.graph)
    validate_cluster_structure(clustering, lowest_id=True)
    bb = build_static_backbone(clustering)
    verify_backbone(bb)
    dyn = broadcast_sd(clustering, source=net.graph.nodes()[0])
    check_full_delivery(net.graph, dyn.result)
