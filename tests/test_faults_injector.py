"""Tests for the runtime fault injector."""

import pytest

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector, assert_graph_untouched
from repro.faults.schedule import (
    DuplicationWindow,
    FaultSchedule,
    LinkDown,
    LinkUp,
    LossWindow,
    NodeDown,
    NodeUp,
    Partition,
    apply_schedule,
    random_schedule,
)
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.sim.messages import Hello
from repro.sim.network import SimNetwork


def line_network():
    """0 - 1 - 2 - 3 with a spur 1 - 4."""
    return SimNetwork(Graph(edges=[(0, 1), (1, 2), (2, 3), (1, 4)]))


def heard(net: SimNetwork):
    """Attach counters; returns {receiver: [senders...]}."""
    log = {v: [] for v in net.graph.nodes()}
    for node in net:
        node.replace_handler(Hello,
                             lambda n, s, m: log[n.id].append(s))
    return log


class TestAttachment:
    def test_attaches_to_medium(self):
        net = line_network()
        injector = FaultInjector(net)
        assert net.medium.fault_hook is injector

    def test_double_attach_rejected(self):
        net = line_network()
        FaultInjector(net)
        with pytest.raises(SimulationError, match="already has a fault hook"):
            FaultInjector(net)

    def test_detach_restores_ideal_medium(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.crash(1)
        injector.detach()
        assert net.medium.fault_hook is None
        log = heard(net)
        net.node(1).send(Hello(origin=1))
        net.run_phase()
        assert log[0] == [1] and log[2] == [1] and log[4] == [1]


class TestNodeFaults:
    def test_crashed_node_neither_sends_nor_receives(self):
        net = line_network()
        injector = FaultInjector(net)
        log = heard(net)
        injector.crash(1)
        net.node(1).send(Hello(origin=1))   # suppressed
        net.node(0).send(Hello(origin=0))   # 1 is deaf
        net.node(2).send(Hello(origin=2))   # 1 is deaf, 3 hears
        net.run_phase()
        assert all(not senders for v, senders in log.items() if v != 3)
        assert log[3] == [2]
        assert injector.suppressed_sends == 1
        assert injector.blocked_by_node == 2

    def test_crashed_sender_not_traced(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.crash(1)
        net.node(1).send(Hello(origin=1))
        net.run_phase()
        assert net.trace.total_messages == 0

    def test_recovery_restores_both_directions(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.crash(1)
        injector.recover(1)
        log = heard(net)
        net.node(1).send(Hello(origin=1))
        net.node(0).send(Hello(origin=0))
        net.run_phase()
        assert log[2] == [1] and 0 in log[1]
        assert injector.is_up(1)
        assert injector.down_nodes == frozenset()
        assert injector.ever_down == frozenset({1})

    def test_crash_unknown_node_rejected(self):
        with pytest.raises(SimulationError, match="unknown node"):
            FaultInjector(line_network()).crash(99)


class TestLinkFaults:
    def test_cut_link_blocks_both_directions(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.cut_link(1, 2)
        log = heard(net)
        net.node(1).send(Hello(origin=1))
        net.node(2).send(Hello(origin=2))
        net.run_phase()
        assert 1 not in log[2] and 2 not in log[1]
        assert log[0] == [1] and log[3] == [2]
        assert injector.blocked_by_link == 2
        assert not injector.link_up(2, 1)

    def test_restore_link(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.cut_link(1, 2)
        injector.restore_link(2, 1)  # order-insensitive
        log = heard(net)
        net.node(1).send(Hello(origin=1))
        net.run_phase()
        assert 1 in log[2]

    def test_partition_and_heal(self):
        net = line_network()
        injector = FaultInjector(net)
        cut = injector.partition({2, 3})
        assert cut == frozenset({(1, 2)})
        log = heard(net)
        net.node(1).send(Hello(origin=1))
        net.run_phase()
        assert 1 not in log[2]
        injector.heal(cut)
        net.node(1).send(Hello(origin=1))
        net.run_phase()
        assert 1 in log[2]

    def test_partition_does_not_steal_existing_cuts(self):
        net = line_network()
        injector = FaultInjector(net)
        injector.cut_link(1, 2)
        cut = injector.partition({2, 3})
        assert cut == frozenset()  # the boundary link was already down
        injector.heal(cut)
        assert injector.cut_links == frozenset({(1, 2)})


class TestWindows:
    def test_loss_window_drops_and_pop_restores(self):
        g = Graph(edges=[(0, i) for i in range(1, 101)])
        net = SimNetwork(g)
        injector = FaultInjector(net, rng=0)
        log = heard(net)
        injector.push_loss(0.5)
        net.node(0).send(Hello(origin=0))
        net.run_phase()
        lost = sum(1 for v in g.nodes() if v != 0 and not log[v])
        assert 20 < lost < 80
        assert injector.window_losses == lost
        injector.pop_loss(0.5)
        net.node(0).send(Hello(origin=0))
        net.run_phase()
        assert all(log[v] for v in g.nodes() if v != 0)

    def test_duplication_window_delivers_twice(self):
        g = Graph(edges=[(0, i) for i in range(1, 101)])
        net = SimNetwork(g)
        injector = FaultInjector(net, rng=0)
        log = heard(net)
        injector.push_duplication(1.0)
        net.node(0).send(Hello(origin=0))
        net.run_phase()
        assert all(log[v] == [0, 0] for v in g.nodes() if v != 0)
        assert injector.duplications == 100

    def test_bad_probability_rejected(self):
        injector = FaultInjector(line_network())
        with pytest.raises(SimulationError):
            injector.push_loss(-0.2)
        with pytest.raises(SimulationError):
            injector.push_duplication(1.2)


class TestScheduleCompilation:
    def test_faults_precede_same_time_deliveries(self):
        # 0 transmits at t=0 (delivery at t=1); node 2 crashes at t=1.
        # The crash event's empty priority sorts before the delivery's
        # (sender, receiver) priority, so the delivery is blocked.
        net = SimNetwork(Graph(edges=[(0, 2)]))
        injector = FaultInjector(net)
        apply_schedule(FaultSchedule([NodeDown(time=1.0, node=2)]), injector)
        log = heard(net)
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert log[2] == []

    def test_full_schedule_lifecycle(self):
        net = line_network()
        injector = FaultInjector(net, rng=1)
        apply_schedule(FaultSchedule([
            NodeDown(time=1.0, node=3),
            NodeUp(time=2.0, node=3),
            LinkDown(time=1.0, u=0, v=1),
            LinkUp(time=2.0, u=0, v=1),
            Partition(time=1.0, nodes=frozenset({4}), duration=1.0),
            LossWindow(time=1.0, probability=0.5, duration=1.0),
            DuplicationWindow(time=1.0, probability=0.5, duration=1.0),
        ]), injector)
        net.run_phase()
        # Past the horizon every transient fault has cleared.
        assert injector.down_nodes == frozenset()
        assert injector.cut_links == frozenset()
        assert injector._loss == [] and injector._dup == []

    def test_schedule_validated_against_network(self):
        from repro.errors import ConfigurationError

        net = line_network()
        injector = FaultInjector(net)
        with pytest.raises(ConfigurationError, match="unknown node"):
            apply_schedule(FaultSchedule([NodeDown(time=0.0, node=77)]),
                           injector)


class TestDeterminismAndPurity:
    def test_injector_never_mutates_graph(self):
        """Property test: a heavy random fault run leaves the Graph intact."""
        network = random_geometric_network(35, 8.0, rng=5)
        graph = network.graph
        before, _ = graph.adjacency_matrix()
        edges_before = graph.edges()
        net = SimNetwork(graph)
        injector = FaultInjector(net, rng=6)
        schedule = random_schedule(
            graph, crash_fraction=0.3, recovery_fraction=0.5,
            link_flap_fraction=0.3, loss_windows=2, duplication_windows=2,
            rng=7,
        )
        apply_schedule(schedule, injector)
        heard(net)
        for v in graph.nodes():
            net.sim.schedule(float(v % 5), lambda v=v:
                             net.node(v).send(Hello(origin=v)))
        net.run_phase()
        assert_graph_untouched(before, net)
        assert graph.edges() == edges_before
        injector.detach()
        assert_graph_untouched(before, net)

    def test_same_seed_identical_trace(self):
        def run(seed: int):
            network = random_geometric_network(30, 8.0, rng=4)
            net = SimNetwork(network.graph, loss_probability=0.2, rng=seed)
            injector = FaultInjector(net, rng=seed + 1)
            apply_schedule(random_schedule(
                network.graph, crash_fraction=0.2, loss_windows=1, rng=9,
            ), injector)
            log = heard(net)
            for v in network.graph.nodes():
                net.sim.schedule(0.0, lambda v=v:
                                 net.node(v).send(Hello(origin=v)),
                                 priority=(v,))
            net.run_phase()
            trace = [(e.time, e.sender) for e in net.trace.entries]
            return trace, {v: tuple(s) for v, s in log.items()}

        assert run(11) == run(11)
        assert run(11) != run(12)
