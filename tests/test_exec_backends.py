"""Tests for the execution backends and the trial-spec plumbing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.exec.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TrialJob,
    as_backend,
    shared_backend,
)
from repro.exec.spec import TrialSpec, resolve_cached
from repro.workload.trials import paired_trials

#: A real, importable spec factory (workers must be able to import it).
FIG6_SPEC = TrialSpec.create(
    "repro.workload.experiments:make_figure_trial",
    metrics="fig6", n=20, degree=8.0, width=100.0, height=100.0,
    scenario_root=42,
)


class TestTrialSpec:
    def test_kwargs_are_order_independent(self):
        a = TrialSpec.create("m:f", x=1, y=2)
        b = TrialSpec.create("m:f", y=2, x=1)
        assert a == b
        assert hash(a) == hash(b)

    def test_task_needs_module_and_factory(self):
        with pytest.raises(ConfigurationError):
            TrialSpec.create("no_colon_here")

    def test_resolve_unknown_module_raises(self):
        spec = TrialSpec.create("repro.definitely_missing:factory")
        with pytest.raises(ConfigurationError):
            spec.resolve()

    def test_resolve_unknown_attribute_raises(self):
        spec = TrialSpec.create("repro.workload.experiments:not_a_factory")
        with pytest.raises(ConfigurationError):
            spec.resolve()

    def test_resolve_cached_returns_same_callable(self):
        assert resolve_cached(FIG6_SPEC) is resolve_cached(FIG6_SPEC)

    def test_spec_round_trips_through_pickle(self):
        import pickle

        assert pickle.loads(pickle.dumps(FIG6_SPEC)) == FIG6_SPEC


class TestTrialJob:
    def test_needs_exactly_one_of_spec_and_fn(self):
        with pytest.raises(ConfigurationError):
            TrialJob()
        with pytest.raises(ConfigurationError):
            TrialJob(spec=FIG6_SPEC, fn=lambda gen: {"m": 0.0})

    def test_fn_job_ignores_index(self):
        job = TrialJob(fn=lambda gen: {"m": float(gen.integers(10))})
        rng = np.random.default_rng(0)
        out = job.call(99, rng)
        assert set(out) == {"m"}


class TestBackendSelection:
    def test_none_maps_to_serial_then_thread(self):
        assert isinstance(as_backend(None, 1), SerialBackend)
        assert isinstance(as_backend(None, 4), ThreadBackend)

    def test_instances_pass_through(self):
        b = SerialBackend()
        assert as_backend(b, 8) is b

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            as_backend("gpu", 2)

    def test_shared_pools_are_memoized_per_worker_count(self):
        a = shared_backend("thread", 2)
        b = shared_backend("thread", 2)
        c = shared_backend("thread", 3)
        assert a is b
        assert a is not c

    def test_shared_serial_is_fresh(self):
        assert shared_backend("serial") is not shared_backend("serial")


class TestProcessBackend:
    def test_closure_cannot_cross_the_boundary(self):
        with pytest.raises(ConfigurationError, match="TrialSpec"):
            paired_trials(
                lambda gen: {"m": 1.0},
                min_samples=2, max_samples=2, rng=1,
                backend="process", parallel=2,
            )

    def test_worker_count_does_not_change_estimates(self):
        kw = dict(spec=FIG6_SPEC, min_samples=10, max_samples=10, rng=3)
        reference = paired_trials(backend="process", parallel=2, **kw)
        other = paired_trials(backend="process", parallel=4, **kw)
        assert reference == other
        assert reference.trials == 10

    def test_process_matches_serial_and_thread_bit_for_bit(self):
        kw = dict(spec=FIG6_SPEC, min_samples=8, max_samples=40, rng=11)
        serial = paired_trials(backend="serial", **kw)
        thread = paired_trials(backend="thread", parallel=3, **kw)
        process = paired_trials(backend="process", parallel=2, **kw)
        assert serial == thread == process

    def test_isolated_pool_close_is_idempotent(self):
        backend = ProcessBackend(2)
        backend.close()
        backend.close()


class TestAdaptiveStopping:
    @settings(max_examples=25, deadline=None)
    @given(
        min_samples=st.integers(2, 12),
        extra=st.integers(0, 20),
        noise=st.floats(0.0, 5.0),
        workers=st.integers(1, 5),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_budget_and_minimum_are_respected(
        self, min_samples, extra, noise, workers, seed
    ):
        """Adaptive waves never exceed max_samples nor converge early."""
        max_samples = min_samples + extra

        def trial(gen):
            return {"m": 10.0 + noise * float(gen.standard_normal())}

        outcome = paired_trials(
            trial, min_samples=min_samples, max_samples=max_samples,
            rng=seed, parallel=workers, backend="serial",
        )
        assert outcome.trials <= max_samples
        assert outcome.trials >= min(min_samples, max_samples)
        if outcome.converged:
            assert outcome.trials >= min_samples

    def test_zero_noise_stops_exactly_at_min_samples(self):
        outcome = paired_trials(
            lambda gen: {"m": 3.0}, min_samples=5, max_samples=500,
            rng=0, backend="serial",
        )
        assert outcome.converged
        assert outcome.trials == 5

    def test_strict_budget_exhaustion_raises(self):
        from repro.errors import SampleBudgetExceededError

        def wild(gen):
            return {"m": float(gen.standard_normal()) * 100.0}

        with pytest.raises(SampleBudgetExceededError):
            paired_trials(
                wild, min_samples=3, max_samples=6, rng=2,
                backend="serial", strict=True,
            )


class TestWorkerValidation:
    """Non-positive worker counts are rejected before any pool exists."""

    @pytest.mark.parametrize("workers", [0, -1, -8])
    def test_shared_backend_rejects_non_positive(self, workers):
        with pytest.raises(ConfigurationError):
            shared_backend("thread", workers)

    @pytest.mark.parametrize("workers", [0, -1])
    def test_as_backend_rejects_non_positive(self, workers):
        with pytest.raises(ConfigurationError):
            as_backend("serial", workers)

    @pytest.mark.parametrize("workers", [1.5, "2", True, None])
    def test_non_int_workers_rejected(self, workers):
        with pytest.raises(ConfigurationError):
            as_backend(None, workers)

    @pytest.mark.parametrize("cls", [ThreadBackend, ProcessBackend])
    def test_pooled_constructors_reject_zero(self, cls):
        with pytest.raises(ConfigurationError):
            cls(0)


class TestBackendLifecycle:
    """Pools rebuild after shutdown/abandon and close stays idempotent."""

    def _wave(self, backend, n=3, start=0):
        from repro.rng import ensure_rng, spawn_seeds

        job = TrialJob(spec=FIG6_SPEC)
        seeds = spawn_seeds(ensure_rng(0), n)
        return backend.run_wave(job, start, seeds)

    def test_shared_backend_survives_global_shutdown(self):
        from repro.exec.backends import shutdown_shared_backends

        backend = shared_backend("thread", 2)
        first = self._wave(backend)
        shutdown_shared_backends()
        # The memoized instance is still usable: _ensure_pool rebuilds.
        again = self._wave(backend)
        assert again == first
        backend.close()

    def test_thread_pool_rebuilds_after_close(self):
        backend = ThreadBackend(2)
        first = self._wave(backend)
        backend.close()
        assert self._wave(backend) == first
        backend.close()
        backend.close()  # double close is a no-op

    def test_thread_pool_rebuilds_after_abandon(self):
        backend = ThreadBackend(2)
        first = self._wave(backend)
        backend.abandon()
        assert backend._pool is None
        assert self._wave(backend) == first
        backend.close()

    def test_process_pool_rebuilds_after_abandon(self):
        backend = ProcessBackend(2)
        try:
            first = self._wave(backend)
            backend.abandon()
            assert backend._pool is None
            assert self._wave(backend) == first
        finally:
            backend.close()
            backend.close()  # double close is a no-op

    def test_abandon_before_first_wave_is_harmless(self):
        backend = ThreadBackend(1)
        backend.abandon()
        assert self._wave(backend, n=1)
        backend.close()

    def test_serial_abandon_is_a_no_op(self):
        backend = SerialBackend()
        backend.abandon()
        assert self._wave(backend, n=1)


class TestCloseRaces:
    """Pool teardown is safe under concurrent close/rebuild callers."""

    def _wave(self, backend, n=2):
        from repro.rng import ensure_rng, spawn_seeds

        job = TrialJob(spec=FIG6_SPEC)
        seeds = spawn_seeds(ensure_rng(0), n)
        return backend.run_wave(job, 0, seeds)

    def test_concurrent_double_close_shuts_down_once(self):
        """N racing closers: each shuts down at most its own detached pool."""
        import threading

        backend = ThreadBackend(2)
        self._wave(backend)  # materialise the pool
        barrier = threading.Barrier(4)
        errors = []

        def closer():
            try:
                barrier.wait()
                backend.close()
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert backend._pool is None

    def test_close_racing_rebuild_never_wedges_a_wave(self):
        """Waves interleaved with closes always complete (pool rebuilds)."""
        import threading

        backend = ThreadBackend(2)
        expected = self._wave(backend)
        stop = threading.Event()
        errors = []

        def churn_close():
            while not stop.is_set():
                backend.close()

        closer = threading.Thread(target=churn_close)
        closer.start()
        try:
            for _ in range(25):
                # A wave may observe a close after _ensure_pool returned;
                # shutdown() waits for running work, so the wave still
                # finishes and matches the reference bit for bit.
                assert self._wave(backend) == expected
        except Exception as exc:
            errors.append(exc)
        finally:
            stop.set()
            closer.join()
            backend.close()
        assert not errors

    def test_abandon_racing_close_is_safe(self):
        import threading

        backend = ThreadBackend(2)
        self._wave(backend)
        barrier = threading.Barrier(2)
        errors = []

        def run(fn):
            try:
                barrier.wait()
                fn()
            except Exception as exc:  # pragma: no cover - failure capture
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(backend.close,)),
                   threading.Thread(target=run, args=(backend.abandon,))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert backend._pool is None
