"""Chaos helpers for the execution layer (not collected as tests).

Importable fault-injecting trial factories plus a tiny journaled-run driver
for subprocess kill/resume experiments.  Everything here is deterministic
*in its metrics*: a chaos trial draws its metric value from the trial
generator **before** any injected failure, so a retried or resumed chunk
reproduces the exact value an undisturbed run would have produced — which
is what lets the chaos tests assert bit-identical estimates.

Failure injections fire **once** each, coordinated through marker files
(`O_CREAT | O_EXCL`, so exactly one execution claims a marker even across
processes): the first execution of a designated trial index crashes /
sleeps / raises, the retry after supervision recovery sails through.

Injection modes (all keyed by trial index):

* ``crash``  — ``SIGKILL`` the executing process.  Under the process
  backend that is a *worker suicide* (the pool breaks with
  ``BrokenProcessPool``); under the serial backend it kills the run
  itself — the mid-run parent death of the kill/resume tests.
* ``sleep``  — block past the supervisor's chunk timeout (a hang).
* ``raise``  — throw a transient ``RuntimeError``.

Run as a script, this module is the subprocess driver used by the
kill/resume tests and ``benchmarks/bench_chaos_exec.py``::

    python tests/chaos_exec.py --journal run.jsonl --marker-dir /tmp/m \\
        --trials 12 --seed 3 --crash-index 7 --out estimates.json

The driver runs a journaled `paired_trials` over the chaos spec (backend
and worker count selectable) and writes the folded estimates as JSON; with ``--crash-index K`` the run
SIGKILLs itself while executing trial ``K`` (first run only — trials
``0..K-1`` are safely journaled), and a second invocation with
``--resume`` finishes the run from the journal.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
from pathlib import Path

import numpy as np


def claim_marker(marker_dir: str, name: str) -> bool:
    """Atomically claim a one-shot failure marker; True for the first caller."""
    path = Path(marker_dir) / name
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def make_chaos_trial(
    *,
    marker_dir: str,
    crash_indices: tuple = (),
    sleep_indices: tuple = (),
    sleep_seconds: float = 5.0,
    raise_indices: tuple = (),
    trial_sleep: float = 0.0,
) -> "callable":
    """Trial-spec factory: a deterministic metric plus one-shot injections.

    The metric (``{"m": uniform draw}``) comes from the trial generator
    before any injection, so chaos never perturbs the value stream.  Each
    listed index fails once (per marker directory) in its designated mode
    and behaves normally ever after.  ``trial_sleep`` pads every trial so
    an external test has a window to SIGKILL the run mid-stream.
    """

    def trial(index: int, gen: np.random.Generator):
        values = {"m": float(gen.uniform())}
        if trial_sleep > 0:
            time.sleep(trial_sleep)
        if index in crash_indices and claim_marker(marker_dir, f"crash-{index}"):
            os.kill(os.getpid(), signal.SIGKILL)
        if index in sleep_indices and claim_marker(marker_dir, f"sleep-{index}"):
            time.sleep(sleep_seconds)
        if index in raise_indices and claim_marker(marker_dir, f"raise-{index}"):
            raise RuntimeError(f"injected transient failure at trial {index}")
        return values

    return trial


def run_journaled(argv=None) -> int:
    """The subprocess driver: one journaled chaos run (see module docstring)."""
    parser = argparse.ArgumentParser(description="journaled chaos run")
    parser.add_argument("--journal", required=True)
    parser.add_argument("--marker-dir", required=True)
    parser.add_argument("--trials", type=int, default=12)
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--resume", action="store_true")
    parser.add_argument("--backend", default="serial",
                        choices=["serial", "thread", "process"])
    parser.add_argument("--parallel", type=int, default=1)
    parser.add_argument("--trial-sleep", type=float, default=0.0,
                        help="pad each trial so an external killer can "
                             "strike mid-run")
    parser.add_argument("--crash-index", type=int, default=None,
                        help="SIGKILL the run itself while executing this "
                             "trial (once per marker dir), before it is "
                             "journaled")
    parser.add_argument("--no-journal", action="store_true",
                        help="plain run (the uninterrupted reference)")
    parser.add_argument("--out", default=None,
                        help="write folded estimates as JSON here")
    args = parser.parse_args(argv)

    from repro.exec.journal import RunJournal
    from repro.exec.spec import TrialSpec
    from repro.workload.trials import paired_trials

    crash = (args.crash_index,) if args.crash_index is not None else ()
    spec = TrialSpec.create(
        "chaos_exec:make_chaos_trial",
        marker_dir=args.marker_dir, crash_indices=crash,
        trial_sleep=args.trial_sleep,
    )
    # Deliberately backend-free: estimates are backend-independent, so a
    # run may be resumed on a different backend or worker count.
    run_key = {"driver": "chaos_exec", "trials": args.trials,
               "seed": args.seed}
    journal = None
    point = None
    if not args.no_journal:
        journal = RunJournal.open(args.journal, run_key, resume=args.resume)
        point = journal.point("chaos")
    outcome = paired_trials(
        spec=spec, min_samples=args.trials, max_samples=args.trials,
        rng=args.seed, backend=args.backend, parallel=args.parallel,
        journal=point,
    )
    if journal is not None:
        journal.close()
    if args.out:
        estimates = {
            label: {"mean": ci.mean, "half_width": ci.half_width,
                    "confidence": ci.confidence, "samples": ci.samples}
            for label, ci in sorted(outcome.estimates.items())
        }
        Path(args.out).write_text(json.dumps(
            {"estimates": estimates, "trials": outcome.trials,
             "converged": outcome.converged}, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(run_journaled())
