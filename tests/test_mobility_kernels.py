"""Property tests: the mobility maintenance kernels are bit-identical.

The array-native :class:`~repro.maintenance.kernels.KernelMobilitySession`
must reproduce the object-layer :class:`~repro.maintenance.session.
MobilitySession` *exactly*, tick for tick — same graphs, same clusterings,
same coverage sets and gateway selections, same churn counters — on
arbitrary raw placements (disconnected included), torus wrap, permuted
non-contiguous ids and boundary-crossing mobility.  This is the contract
that lets :class:`MobilitySession` dispatch to the kernel purely on size.

The building blocks are pinned down separately so a failure localises:
``apply_edge_delta`` against a from-scratch rebuild, ``IncrementalGrid``
deltas against a full pair-sweep diff, and ``repair_lowest_id_rows``
against the unconstrained fixpoint.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lowest_id import lowest_id_rows, repair_lowest_id_rows
from repro.errors import ConfigurationError, GeometryError
from repro.geometry.area import Area
from repro.geometry.grid import IncrementalGrid, SpatialGrid
from repro.geometry.mobility import RandomWalk, RandomWaypoint
from repro.geometry.placement import uniform_placement
from repro.graph.csr import apply_edge_delta, csr_from_positions
from repro.graph.network import Network
from repro.maintenance.kernels import KernelMobilitySession
from repro.maintenance.session import MobilitySession
from repro.types import CoveragePolicy


@st.composite
def mobility_scenarios(draw):
    """Raw mobility scenarios: placement, radius, model, torus, ids.

    Placements are *not* rejected for connectivity; speeds range up to a
    large fraction of the radius per tick, so deltas span "nothing moved
    cells" to "most edges churned" and nodes bounce off (or wrap around)
    the area boundary.
    """
    n = draw(st.integers(2, 45))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    side = draw(st.sampled_from([40.0, 80.0, 150.0]))
    radius = draw(st.sampled_from([12.0, 25.0, 50.0]))
    area = Area(side, side)
    positions = uniform_placement(n, area, rng=rng)
    torus = draw(st.booleans())
    if draw(st.booleans()):
        ids = [int(v) for v in rng.permutation(10 * n)[:n]]
    else:
        ids = None
    speed = draw(st.sampled_from([0.5, 4.0, 15.0]))
    model_seed = draw(st.integers(0, 2**32 - 1))
    kind = draw(st.sampled_from(["walk", "waypoint"]))
    return positions, radius, area, torus, ids, kind, speed, model_seed


def _model(kind, speed, area, seed):
    if kind == "walk":
        return RandomWalk(speed=speed, area=area, rng=seed)
    return RandomWaypoint(
        speed_range=(0.5 * speed, speed), pause_time=0.25, area=area,
        rng=seed,
    )


class TestSessionEquivalence:
    """Kernel session vs object session, tick for tick."""

    @given(mobility_scenarios(), st.integers(2, 5))
    @settings(max_examples=40, deadline=None)
    def test_ticks_bit_identical(self, scenario, ticks):
        positions, radius, area, torus, ids, kind, speed, mseed = scenario
        net = Network.from_positions(
            positions, radius, ids=ids, area=area, torus=torus
        )
        obj = MobilitySession(
            net, _model(kind, speed, area, mseed), kernel=False
        )
        ker = MobilitySession(
            net, _model(kind, speed, area, mseed), kernel=True
        )
        assert ker.kernel
        assert obj.structure.head_of == ker.structure.head_of
        assert obj.backbone.gateways == ker.backbone.gateways
        for _ in range(ticks):
            ro = obj.step(1.0)
            rk = ker.step(1.0)
            assert ro.network.positions == rk.network.positions
            assert set(ro.network.graph.edges()) == set(
                rk.network.graph.edges()
            )
            assert ro.structure.head_of == rk.structure.head_of
            assert ro.backbone.gateways == rk.backbone.gateways
            for h in ro.backbone.selections:
                assert (ro.backbone.coverage_sets[h].all_targets
                        == rk.backbone.coverage_sets[h].all_targets)
                assert (ro.backbone.selections[h].gateways
                        == rk.backbone.selections[h].gateways)
            assert ro.connected == rk.connected
            assert ro.link_changes == rk.link_changes
            assert ro.cluster_churn == rk.cluster_churn
            assert ro.backbone_churn == rk.backbone_churn

    def test_kernel_session_requires_two_five_hop(self):
        pts = uniform_placement(10, rng=0)
        with pytest.raises(ConfigurationError):
            KernelMobilitySession(
                pts, 20.0, RandomWalk(speed=1.0, rng=0),
                policy=CoveragePolicy.THREE_HOP,
            )

    def test_repair_summary_covers_role_changes(self):
        area = Area(60.0, 60.0)
        pts = uniform_placement(40, area, rng=3)
        session = KernelMobilitySession(
            pts, 15.0, RandomWalk(speed=8.0, area=area, rng=4), area=area
        )
        for _ in range(5):
            session.step(1.0)
            summary = session.repair_summary()
            assert summary.flipped <= summary.reevaluated
            assert len(summary.role_changes) <= summary.touched


class TestMaskedCoverageLargeN:
    """Regression: key packing must not wrap in the CSR's int32 indices.

    ``row * n`` exceeds int32 once ``n > ~46k``, so a masked-coverage
    sweep at n=50000 catches any packing done in the indices' dtype
    (which silently wrapped — and unsorted the witness tables — before
    the gathered neighbours were promoted to int64).
    """

    def test_masked_matches_full_above_int32_boundary(self):
        from repro.coverage.two_five_hop import (
            two_five_hop_arrays,
            two_five_hop_arrays_masked,
        )

        n = 50_000
        rng = np.random.default_rng(8)
        side = 100.0 * (n / 100.0) ** 0.5
        area = Area(side, side)
        pts = uniform_placement(n, area, rng=rng)
        csr = csr_from_positions(pts, 14.0)
        assert csr.indices.dtype == np.int32
        head = lowest_id_rows(csr)
        heads = np.flatnonzero(head == np.arange(n))
        full = two_five_hop_arrays(csr, head)
        masked = two_five_hop_arrays_masked(csr, head, heads)
        for got, want in zip(masked, (full.d_head, full.d_ch, full.d_v,
                                      full.i_head, full.i_ch, full.i_v,
                                      full.i_w)):
            np.testing.assert_array_equal(got, want)


class TestApplyEdgeDelta:
    """CSR delta application vs a from-scratch rebuild."""

    @given(st.integers(2, 50), st.integers(0, 2**32 - 1),
           st.sampled_from([10.0, 20.0, 40.0]))
    @settings(max_examples=60, deadline=None)
    def test_matches_rebuild(self, n, seed, radius):
        rng = np.random.default_rng(seed)
        area = Area(70.0, 70.0)
        before = uniform_placement(n, area, rng=rng)
        after = area.clamp(before + rng.normal(0.0, 6.0, size=before.shape))
        old = csr_from_positions(before, radius)
        new = csr_from_positions(after, radius)

        def canonical(csr):
            keys = csr.edge_keys()
            src, dst = keys // n, keys % n
            return np.sort(src[src < dst] * n + dst[src < dst])

        old_keys, new_keys = canonical(old), canonical(new)
        added = np.setdiff1d(new_keys, old_keys)
        removed = np.setdiff1d(old_keys, new_keys)
        patched = apply_edge_delta(old, added, removed)
        np.testing.assert_array_equal(patched.indptr, new.indptr)
        np.testing.assert_array_equal(patched.indices, new.indices)

    def test_rejects_removing_missing_edge(self):
        # A 3-node line: (0,1) and (1,2) are edges, (0,2) is not.
        line = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        csr = csr_from_positions(line, 1.5)
        with pytest.raises(GeometryError):
            apply_edge_delta(
                csr, np.empty(0, dtype=np.int64),
                np.array([0 * 3 + 2], dtype=np.int64),
            )

    def test_rejects_adding_present_edge(self):
        line = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        csr = csr_from_positions(line, 1.5)
        with pytest.raises(GeometryError):
            apply_edge_delta(
                csr, np.array([0 * 3 + 1], dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )


class TestIncrementalGridDelta:
    """Incremental delta sweep vs full pair-sweep diff across ticks."""

    @given(st.integers(2, 60), st.integers(0, 2**32 - 1),
           st.sampled_from([8.0, 15.0, 30.0]), st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_matches_full_sweep_diff(self, n, seed, radius, ticks):
        rng = np.random.default_rng(seed)
        area = Area(90.0, 90.0)
        pts = uniform_placement(n, area, rng=rng)
        grid = IncrementalGrid(pts, cell_size=radius)
        for _ in range(ticks):
            # Move a random subset only, so "stationary node keeps its
            # edges" paths are exercised too.
            move = rng.random(n) < rng.uniform(0.2, 1.0)
            new_pts = pts.copy()
            new_pts[move] = area.clamp(
                pts[move] + rng.normal(0.0, radius, size=(int(move.sum()), 2))
            )
            moved = grid.update(new_pts)
            np.testing.assert_array_equal(
                moved, (new_pts != pts).any(axis=1)
            )
            us, vs = grid.delta_pairs(radius, moved)
            got = np.sort(np.minimum(us, vs) * n + np.maximum(us, vs))

            def all_pairs(p):
                a, b = SpatialGrid(p, cell_size=radius).pair_arrays(radius)
                return np.sort(np.minimum(a, b) * n + np.maximum(a, b))

            old_keys, new_keys = all_pairs(pts), all_pairs(new_pts)
            touched = np.union1d(
                np.setdiff1d(new_keys, old_keys),
                np.setdiff1d(old_keys, new_keys),
            )
            # The delta sweep reports every *current* in-range pair with a
            # moved endpoint; the true edge delta is its diff against the
            # old adjacency restricted to the same pairs — so it must
            # cover all appeared edges, and appeared edges must be a
            # subset of the sweep.
            appeared = np.setdiff1d(new_keys, old_keys)
            assert np.isin(appeared, got).all()
            assert np.isin(got, new_keys).all()
            assert np.isin(touched, np.union1d(got, old_keys)).all()
            pts = new_pts


class TestRepairLowestId:
    """Constrained fixpoint repair vs the unconstrained kernel."""

    @given(st.integers(2, 50), st.integers(0, 2**32 - 1),
           st.sampled_from([10.0, 18.0, 35.0]))
    @settings(max_examples=60, deadline=None)
    def test_matches_full_fixpoint(self, n, seed, radius):
        rng = np.random.default_rng(seed)
        area = Area(60.0, 60.0)
        before = uniform_placement(n, area, rng=rng)
        after = area.clamp(before + rng.normal(0.0, 5.0, size=before.shape))
        old_csr = csr_from_positions(before, radius)
        new_csr = csr_from_positions(after, radius)
        old_head = lowest_id_rows(old_csr)

        def canonical(csr):
            keys = csr.edge_keys()
            src, dst = keys // n, keys % n
            return np.sort(src[src < dst] * n + dst[src < dst])

        delta = np.setxor1d(canonical(old_csr), canonical(new_csr))
        seeds = np.unique(np.concatenate([delta // n, delta % n]))
        head, reevaluated, flipped, reassigned = repair_lowest_id_rows(
            new_csr, old_head, seeds
        )
        np.testing.assert_array_equal(head, lowest_id_rows(new_csr))
        rows = np.arange(n)
        old_is_head, is_head = old_head == rows, head == rows
        np.testing.assert_array_equal(
            flipped, np.flatnonzero(old_is_head != is_head)
        )
        changed = np.flatnonzero(head != old_head)
        np.testing.assert_array_equal(
            reassigned, changed[~old_is_head[changed] & ~is_head[changed]]
        )
        assert np.isin(flipped, reevaluated).all()
