"""Tests for SimNetwork assembly and lifecycle."""

import pytest

from repro.graph.adjacency import Graph
from repro.graph.generators import paper_figure3_graph
from repro.sim.medium import CollisionMedium, WirelessMedium
from repro.sim.messages import Hello
from repro.sim.network import SimNetwork
from repro.sim.trace import TraceRecorder


class TestAssembly:
    def test_one_node_per_host(self):
        g = paper_figure3_graph()
        net = SimNetwork(g)
        assert set(net.nodes) == set(g.nodes())
        assert net.node(5).id == 5

    def test_iteration_is_id_ordered(self):
        net = SimNetwork(Graph(nodes=[3, 1, 2]))
        assert [n.id for n in net] == [1, 2, 3]

    def test_default_medium_is_ideal(self):
        net = SimNetwork(Graph(nodes=[0]))
        assert type(net.medium) is WirelessMedium

    def test_collision_flag_selects_medium(self):
        net = SimNetwork(Graph(nodes=[0]), collisions=True)
        assert isinstance(net.medium, CollisionMedium)

    def test_shared_trace_injection(self):
        trace = TraceRecorder()
        g = Graph(edges=[(0, 1)])
        net = SimNetwork(g, trace=trace)
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert trace.total_messages == 1
        assert net.trace is trace


class TestLifecycle:
    def test_run_phase_returns_event_count(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        net = SimNetwork(g)
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        # 1 send event + 2 delivery events.
        assert net.run_phase() == 3

    def test_multiple_phases_accumulate_time(self):
        g = Graph(edges=[(0, 1)])
        net = SimNetwork(g)
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        t1 = net.sim.now
        net.sim.schedule(0.0, lambda: net.node(1).send(Hello(origin=1)))
        net.run_phase()
        assert net.sim.now >= t1
