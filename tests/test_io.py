"""Tests for network JSON and results serialisation."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.graph.generators import random_geometric_network
from repro.io.network_json import load_network, save_network
from repro.io.results import tables_to_csv, tables_to_json
from repro.metrics.confidence import ConfidenceInterval
from repro.metrics.series import ExperimentSeries, SeriesTable


class TestNetworkJson:
    def test_roundtrip(self, tmp_path):
        net = random_geometric_network(20, 6.0, rng=0)
        path = tmp_path / "net.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.graph == net.graph
        assert loaded.radius == net.radius
        assert loaded.area == net.area
        for v, (x, y) in net.positions.items():
            assert loaded.positions[v] == pytest.approx((x, y))

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            load_network(p)

    def test_wrong_format(self, tmp_path):
        p = tmp_path / "other.json"
        p.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConfigurationError, match="not a repro network"):
            load_network(p)

    def test_wrong_version(self, tmp_path):
        p = tmp_path / "v99.json"
        p.write_text(json.dumps({"format": "repro-network", "version": 99}))
        with pytest.raises(ConfigurationError, match="unsupported version"):
            load_network(p)

    def test_malformed_nodes(self, tmp_path):
        p = tmp_path / "malformed.json"
        p.write_text(json.dumps({
            "format": "repro-network", "version": 1, "radius": 1.0,
            "area": {"width": 10, "height": 10},
            "nodes": [{"id": 0}],
        }))
        with pytest.raises(ConfigurationError, match="malformed"):
            load_network(p)


def sample_table():
    t = SeriesTable(title="T", x_label="n")
    s = ExperimentSeries(label="alg")
    s.add(20, ConfidenceInterval(mean=5.0, half_width=0.2,
                                 confidence=0.99, samples=30))
    s.add(40, ConfidenceInterval(mean=9.0, half_width=0.3,
                                 confidence=0.99, samples=31))
    t.add_series(s)
    return t


class TestResults:
    def test_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        rows = tables_to_csv([sample_table()], path)
        assert rows == 2
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("table,series,n,mean")
        assert len(lines) == 3
        assert "alg" in lines[1]

    def test_json(self, tmp_path):
        path = tmp_path / "out.json"
        count = tables_to_json([sample_table()], path)
        assert count == 2
        records = json.loads(path.read_text())
        assert records[0]["mean"] == 5.0
        assert records[1]["samples"] == 31


class TestSweepRoundTrips:
    def robustness_points(self):
        from repro.workload.robustness import RobustnessPoint

        return [
            RobustnessPoint(loss_probability=0.0,
                            delivery={"flooding": 1.0, "static": 1.0},
                            forwards={"flooding": 30.0, "static": 14.5}),
            RobustnessPoint(loss_probability=0.2,
                            delivery={"flooding": 0.93, "static": 0.81},
                            forwards={"flooding": 27.1, "static": 11.2}),
        ]

    def fault_points(self):
        from repro.workload.faultsweep import FaultSweepPoint

        return [
            FaultSweepPoint(loss_probability=0.2,
                            delivery={"si": 0.8, "reliable-si": 1.0},
                            overhead={"si": 0.4, "reliable-si": 2.2},
                            latency={"si": 4.0, "reliable-si": 9.5},
                            trials=8),
        ]

    def test_robustness_roundtrip(self, tmp_path):
        from repro.io.results import robustness_from_json, robustness_to_json

        points = self.robustness_points()
        path = tmp_path / "robustness.json"
        assert robustness_to_json(points, path) == 2
        assert robustness_from_json(path) == points

    def test_fault_sweep_roundtrip(self, tmp_path):
        from repro.io.results import fault_sweep_from_json, fault_sweep_to_json

        points = self.fault_points()
        path = tmp_path / "faults.json"
        assert fault_sweep_to_json(points, path) == 1
        assert fault_sweep_from_json(path) == points

    def test_formats_not_interchangeable(self, tmp_path):
        from repro.io.results import fault_sweep_from_json, robustness_to_json

        path = tmp_path / "robustness.json"
        robustness_to_json(self.robustness_points(), path)
        with pytest.raises(ConfigurationError, match="not a"):
            fault_sweep_from_json(path)

    def test_invalid_json_rejected(self, tmp_path):
        from repro.io.results import robustness_from_json

        path = tmp_path / "bad.json"
        path.write_text("{oops")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            robustness_from_json(path)

    def test_malformed_point_rejected(self, tmp_path):
        from repro.io.results import FAULT_SWEEP_FORMAT, fault_sweep_from_json

        path = tmp_path / "malformed.json"
        path.write_text(json.dumps({
            "format": FAULT_SWEEP_FORMAT, "version": 1,
            "points": [{"loss_probability": 0.1}],
        }))
        with pytest.raises(ConfigurationError, match="malformed"):
            fault_sweep_from_json(path)

    def test_wrong_version_rejected(self, tmp_path):
        from repro.io.results import ROBUSTNESS_FORMAT, robustness_from_json

        path = tmp_path / "v99.json"
        path.write_text(json.dumps({
            "format": ROBUSTNESS_FORMAT, "version": 99, "points": [],
        }))
        with pytest.raises(ConfigurationError, match="version"):
            robustness_from_json(path)


class TestMarkdown:
    def test_markdown_output(self, tmp_path):
        from repro.io.results import tables_to_markdown

        path = tmp_path / "out.md"
        count = tables_to_markdown([sample_table()], path)
        assert count == 1
        text = path.read_text()
        assert text.startswith("### T")
        assert "| n | alg |" in text
        assert "| 20 | 5.00 |" in text
        assert "| 40 | 9.00 |" in text


class TestTraceJson:
    def test_roundtrippable_document(self, tmp_path):
        import json

        from repro.graph.generators import paper_figure3_graph
        from repro.io.trace_json import trace_to_json
        from repro.protocols.runner import run_distributed_build

        build = run_distributed_build(paper_figure3_graph())
        path = tmp_path / "trace.json"
        count = trace_to_json(build.network.trace, path)
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-trace"
        assert doc["total_messages"] == count == len(doc["transmissions"])
        assert doc["total_volume"] == build.network.trace.total_volume
        types = {t["type"] for t in doc["transmissions"]}
        assert {"Hello", "ClusterHead", "NonClusterHead", "ChHop1",
                "ChHop2", "Gateway"} <= types
        # CH_HOP payloads survive serialisation.
        hop1_9 = next(t for t in doc["transmissions"]
                      if t["type"] == "ChHop1" and t["sender"] == 9)
        assert sorted(hop1_9["payload"]["heads"]) == [3, 4]


class TestAtomicWrites:
    """Result files are replaced atomically — never observable half-written."""

    def test_atomic_write_replaces_and_leaves_no_temp(self, tmp_path):
        from repro.io.results import _atomic_write_text

        target = tmp_path / "doc.json"
        target.write_text("old contents")
        _atomic_write_text(target, "new contents")
        assert target.read_text() == "new contents"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_failed_write_preserves_the_old_file(self, tmp_path):
        from repro.io.results import _atomic_write_text

        target = tmp_path / "doc.json"
        target.write_text("precious")
        # A non-text payload fails inside the temp-file write: the
        # replace never happens, so the target must be untouched.
        with pytest.raises(TypeError):
            _atomic_write_text(target, object())
        assert target.read_text() == "precious"
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_append_perf_point_is_atomic_and_appends(self, tmp_path):
        from repro.io.results import append_perf_point, load_perf_trajectory

        path = tmp_path / "BENCH.json"
        assert append_perf_point(path, {"label": "a", "v": 1}) == 1
        assert append_perf_point(path, {"label": "a", "v": 2}) == 2
        assert [p["v"] for p in load_perf_trajectory(path)] == [1, 2]
        assert [p.name for p in tmp_path.iterdir()] == ["BENCH.json"]
