"""Tests for the analysis package (latency, redundancy, cluster shape)."""

import pytest
from hypothesis import given, settings

from repro.analysis.clusters import cluster_report
from repro.analysis.latency import latency_stretch, latency_study
from repro.analysis.redundancy import redundancy_report
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import BroadcastError, ConfigurationError
from repro.graph.adjacency import Graph
from repro.graph.generators import (
    chain_graph,
    random_geometric_network,
    star_graph,
)

from strategies import connected_graphs


class TestLatencyStretch:
    def test_flooding_is_optimal(self, fig3_graph):
        r = blind_flooding(fig3_graph, 1)
        assert latency_stretch(fig3_graph, r) == 1.0

    def test_backbone_stretch_at_least_one(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        r = broadcast_si(fig3_graph, bb, 1)
        assert latency_stretch(fig3_graph, r) >= 1.0

    def test_partial_delivery_rejected(self):
        g = Graph(edges=[(0, 1), (5, 6)])
        r = blind_flooding(g, 0)
        with pytest.raises(BroadcastError):
            latency_stretch(g, r)

    def test_single_node(self):
        g = Graph(nodes=[0])
        assert latency_stretch(g, blind_flooding(g, 0)) == 1.0

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs())
    def test_sd_stretch_bounded(self, graph):
        cs = lowest_id_clustering(graph)
        dyn = broadcast_sd(cs, source=0)
        stretch = latency_stretch(graph, dyn.result)
        # Every head forwards immediately on first receipt; each BFS hop
        # costs at most one 3-hop cluster traversal, plus constant start-up
        # hops (member->head), so the stretch stays a small constant.
        assert 1.0 <= stretch <= 5.0

    def test_latency_study(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        study = latency_study(
            fig3_graph,
            {
                "flooding": blind_flooding,
                "static": lambda g, s: broadcast_si(g, bb, s),
            },
            source=1,
        )
        assert study["flooding"][1] == 1.0
        assert study["static"][0] >= study["flooding"][0]


class TestRedundancy:
    def test_star_from_hub(self):
        g = star_graph(5)
        rep = redundancy_report(g, blind_flooding(g, 0))
        # Hub's transmission reaches 5 leaves; each leaf's reaches the hub.
        assert rep.total_receptions == 10
        assert rep.max_copies == 5  # the hub hears every leaf
        assert rep.silent_hosts == 0
        assert rep.forward_fraction == 1.0

    def test_backbone_reduces_mean_copies(self):
        net = random_geometric_network(60, 18.0, rng=4)
        cs = lowest_id_clustering(net.graph)
        flood = redundancy_report(net.graph, blind_flooding(net.graph, 0))
        dyn = redundancy_report(
            net.graph, broadcast_sd(cs, source=0).result
        )
        assert dyn.mean_copies < flood.mean_copies
        assert dyn.forward_fraction < 1.0

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            redundancy_report(Graph(), blind_flooding(Graph(nodes=[0]), 0))

    def test_mean_copies_matches_handshake_sum(self, fig3_graph):
        r = blind_flooding(fig3_graph, 1)
        rep = redundancy_report(fig3_graph, r)
        assert rep.total_receptions == 2 * fig3_graph.num_edges


class TestClusterReport:
    def test_figure3(self, fig3_clustering):
        rep = cluster_report(fig3_clustering)
        assert rep.num_clusters == 4
        assert rep.size.maximum == 4.0  # cluster 1: head + 3 members
        assert rep.singleton_clusters == 1  # cluster 4
        # Gateway candidates: every non-head adjacent to a foreign cluster.
        assert rep.gateway_candidates == 6  # 5,6,7,8,9,10 all border others

    def test_chain(self):
        cs = lowest_id_clustering(chain_graph(6))
        rep = cluster_report(cs)
        assert rep.num_clusters == 3
        assert rep.mean_size == 2.0

    def test_empty_clustering_rejected(self):
        cs = lowest_id_clustering(Graph())
        with pytest.raises(ConfigurationError):
            cluster_report(cs)

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs())
    def test_sizes_partition_nodes(self, graph):
        cs = lowest_id_clustering(graph)
        rep = cluster_report(cs)
        assert rep.size.mean * rep.num_clusters == pytest.approx(
            graph.num_nodes
        )
