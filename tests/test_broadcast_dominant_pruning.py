"""Tests for the dominant-pruning extension baseline."""

import pytest
from hypothesis import given, settings

from repro.broadcast.dominant_pruning import broadcast_dominant_pruning
from repro.broadcast.flooding import blind_flooding
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, star_graph

from strategies import connected_graphs, geometric_networks


class TestDominantPruning:
    def test_star_needs_only_hub(self):
        r = broadcast_dominant_pruning(star_graph(8), 0)
        assert r.forward_nodes == frozenset({0})
        assert r.delivered_to_all(star_graph(8))

    def test_star_from_leaf(self):
        g = star_graph(8)
        r = broadcast_dominant_pruning(g, 3)
        assert r.delivered_to_all(g)
        assert r.num_forward_nodes == 2  # leaf + hub

    def test_chain_forwards_interior(self):
        g = chain_graph(6)
        r = broadcast_dominant_pruning(g, 0)
        assert r.delivered_to_all(g)
        # The last node never needs to forward.
        assert 5 not in r.forward_nodes

    def test_unknown_source(self):
        with pytest.raises(NodeNotFoundError):
            broadcast_dominant_pruning(chain_graph(3), 9)

    def test_figure5_redundancy_removed(self):
        # Triangle u-v-w: after u transmits, nobody needs to forward.
        g = Graph(edges=[(0, 1), (0, 2), (1, 2)])
        r = broadcast_dominant_pruning(g, 0)
        assert r.forward_nodes == frozenset({0})

    @settings(max_examples=50, deadline=None)
    @given(graph=connected_graphs())
    def test_full_delivery(self, graph):
        r = broadcast_dominant_pruning(graph, 0)
        assert r.delivered_to_all(graph)

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks())
    def test_beats_flooding(self, net):
        dp = broadcast_dominant_pruning(net.graph, 0)
        fl = blind_flooding(net.graph, 0)
        assert dp.num_forward_nodes <= fl.num_forward_nodes
        assert dp.delivered_to_all(net.graph)
