"""Tests for the Network value object."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.area import Area
from repro.graph.network import Network


@pytest.fixture
def net3():
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
    return Network.from_positions(pts, 1.5, area=Area(10, 10))


class TestFromPositions:
    def test_graph_built(self, net3):
        assert net3.graph.has_edge(0, 1)
        assert not net3.graph.has_edge(1, 2)
        assert net3.num_nodes == 3

    def test_positions_stored(self, net3):
        assert net3.positions[2] == (5.0, 0.0)

    def test_custom_ids(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0]])
        net = Network.from_positions(pts, 2.0, ids=[7, 3])
        assert net.graph.has_edge(3, 7)
        assert net.positions[7] == (0.0, 0.0)

    def test_position_array_roundtrip(self, net3):
        arr = net3.position_array()
        assert arr.shape == (3, 2)
        assert arr[1].tolist() == [1.0, 0.0]

    def test_position_array_custom_order(self, net3):
        arr = net3.position_array(order=[2, 0, 1])
        assert arr[0].tolist() == [5.0, 0.0]


class TestValidation:
    def test_mismatched_positions_rejected(self, net3):
        with pytest.raises(GeometryError):
            Network(graph=net3.graph, positions={0: (0, 0)}, radius=1.0)

    def test_bad_radius_rejected(self, net3):
        with pytest.raises(GeometryError):
            Network(graph=net3.graph, positions=net3.positions, radius=0.0)


class TestMoved:
    def test_rebuilds_graph(self, net3):
        moved = net3.moved(np.array([[0.0, 0.0], [4.0, 0.0], [5.0, 0.0]]))
        assert not moved.graph.has_edge(0, 1)
        assert moved.graph.has_edge(1, 2)

    def test_original_untouched(self, net3):
        net3.moved(np.array([[0.0, 0.0], [4.0, 0.0], [5.0, 0.0]]))
        assert net3.graph.has_edge(0, 1)

    def test_keeps_radius_and_area(self, net3):
        moved = net3.moved(net3.position_array())
        assert moved.radius == net3.radius
        assert moved.area == net3.area

    def test_shape_mismatch_rejected(self, net3):
        with pytest.raises(GeometryError):
            net3.moved(np.zeros((2, 2)))
