"""Tests for crash-safe run journaling and journaled-trial resume."""

import json

import pytest

from repro.errors import JournalError
from repro.exec.journal import (
    JOURNAL_FORMAT,
    PointJournal,
    RunJournal,
    open_journal,
)
from repro.exec.spec import TrialSpec
from repro.workload.trials import paired_trials

KEY = {"command": "test", "seed": 7}


def chaos_spec(marker_dir):
    """An injection-free chaos spec (a pure deterministic metric stream)."""
    return TrialSpec.create("chaos_exec:make_chaos_trial",
                            marker_dir=str(marker_dir))


class TestLifecycle:
    def test_fresh_journal_has_header_and_no_records(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            assert journal.points == []
            assert journal.counts() == {}
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == JOURNAL_FORMAT
        assert header["run"] == KEY

    def test_existing_file_refused_without_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.open(path, KEY).close()
        with pytest.raises(JournalError, match="resume"):
            RunJournal.open(path, KEY)

    def test_record_and_resume_replays_in_order(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            journal.record("p", 0, {"m": 1.0})
            journal.record("p", 1, {"m": 2.5})
            journal.record("q", 0, {"m": 9.0})
        with RunJournal.open(path, KEY, resume=True) as journal:
            assert journal.replay("p") == [{"m": 1.0}, {"m": 2.5}]
            assert journal.replay("q") == [{"m": 9.0}]
            assert journal.counts() == {"p": 2, "q": 1}

    def test_record_is_idempotent_per_point_and_index(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            journal.record("p", 0, {"m": 1.0})
            journal.record("p", 0, {"m": 999.0})  # ignored: already durable
        with RunJournal.open(path, KEY, resume=True) as journal:
            assert journal.replay("p") == [{"m": 1.0}]
        assert len(path.read_text().splitlines()) == 2  # header + 1 record

    def test_record_after_close_raises(self, tmp_path):
        journal = RunJournal.open(tmp_path / "run.jsonl", KEY)
        journal.close()
        with pytest.raises(JournalError, match="closed"):
            journal.record("p", 0, {"m": 1.0})
        journal.close()  # idempotent

    def test_key_mismatch_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.open(path, KEY).close()
        with pytest.raises(JournalError, match="different run"):
            RunJournal.open(path, {"command": "test", "seed": 8},
                            resume=True)

    def test_key_normalises_through_json(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.open(path, {"losses": (0.1, 0.2)}).close()
        # Tuples become lists in JSON; the same run must still match.
        RunJournal.open(path, {"losses": [0.1, 0.2]}, resume=True).close()

    def test_unserialisable_key_raises(self, tmp_path):
        with pytest.raises(JournalError, match="JSON"):
            RunJournal.open(tmp_path / "run.jsonl", {"bad": object()})

    def test_open_journal_none_for_falsy_path(self, tmp_path):
        assert open_journal("", KEY) is None
        assert open_journal(None, KEY) is None
        journal = open_journal(tmp_path / "run.jsonl", KEY)
        assert isinstance(journal, RunJournal)
        journal.close()


class TestSingleWriter:
    def test_concurrent_open_of_same_path_is_refused(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = RunJournal.open(path, KEY)
        try:
            with pytest.raises(JournalError,
                               match="one writer|another writer"):
                RunJournal.open(path, KEY, resume=True)
        finally:
            first.close()
        # Released on close: the next open succeeds.
        RunJournal.open(path, KEY, resume=True).close()

    def test_lock_covers_path_aliases(self, tmp_path):
        path = tmp_path / "run.jsonl"
        first = RunJournal.open(path, KEY)
        try:
            alias = tmp_path / "." / "run.jsonl"
            with pytest.raises(JournalError):
                RunJournal.open(alias, KEY, resume=True)
        finally:
            first.close()

    def test_failed_open_does_not_leak_the_lock(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunJournal.open(path, KEY).close()
        with pytest.raises(JournalError):  # key mismatch after load
            RunJournal.open(path, {"other": 1}, resume=True)
        # The refused open held nothing: a correct open still works.
        RunJournal.open(path, KEY, resume=True).close()

    def test_distinct_paths_are_independent(self, tmp_path):
        a = RunJournal.open(tmp_path / "a.jsonl", KEY)
        b = RunJournal.open(tmp_path / "b.jsonl", KEY)
        a.close()
        b.close()


class TestCorruption:
    def _journal_with_records(self, tmp_path, n=3):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            for i in range(n):
                journal.record("p", i, {"m": float(i)})
        return path

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"point":"p","index":3,"val')  # crash mid-append
        with RunJournal.open(path, KEY, resume=True) as journal:
            assert journal.counts() == {"p": 3}
        assert not path.read_text().endswith('"val')  # truncated away
        # The truncated journal is clean: a third open sees no tail.
        RunJournal.open(path, KEY, resume=True).close()

    def test_torn_tail_with_trailing_newline_is_dropped(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        with open(path, "a") as fh:
            fh.write('{"point":"p","index"\n')
        with RunJournal.open(path, KEY, resume=True) as journal:
            assert journal.counts() == {"p": 3}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = self._journal_with_records(tmp_path)
        lines = path.read_text().splitlines()
        lines[2] = "NOT JSON"  # a record with valid records after it
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="corrupt"):
            RunJournal.open(path, KEY, resume=True)

    def test_headerless_file_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("no header here")
        with pytest.raises(JournalError):
            RunJournal.open(path, KEY, resume=True)

    def test_torn_header_raises_clean_journal_error(self, tmp_path):
        # A header torn mid-write (no newline ever made it to disk).  The
        # atomic create makes this impossible for journals we wrote, but
        # the daemon's restart scan must get a classifiable JournalError —
        # never a JSON traceback — so it can restart the run from nothing.
        path = tmp_path / "run.jsonl"
        good = RunJournal.open(tmp_path / "donor.jsonl", KEY)
        good.close()
        header = (tmp_path / "donor.jsonl").read_bytes().rstrip(b"\n")
        path.write_bytes(header[: len(header) // 2])
        with pytest.raises(JournalError, match="header"):
            RunJournal.open(path, KEY, resume=True)
        # Recovery path: delete the torn file and start over.
        path.unlink()
        RunJournal.open(path, KEY).close()

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(JournalError, match="not a"):
            RunJournal.open(path, KEY, resume=True)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps(
            {"format": JOURNAL_FORMAT, "version": 99, "run": KEY}) + "\n")
        with pytest.raises(JournalError, match="version"):
            RunJournal.open(path, KEY, resume=True)

    def test_gap_in_indices_raises_on_replay(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            journal.record("p", 0, {"m": 0.0})
            journal.record("p", 2, {"m": 2.0})  # 1 missing
            with pytest.raises(JournalError, match="gap"):
                journal.replay("p")


class TestPointJournal:
    def test_point_view_round_trips(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            point = journal.point("fig6:d=6:n=20")
            assert isinstance(point, PointJournal)
            assert point.replay_prefix() == []
            point.record(0, {"m": 0.5})
            point.record(1, {"m": 1.5})
        with RunJournal.open(path, KEY, resume=True) as journal:
            point = journal.point("fig6:d=6:n=20")
            assert point.replay_prefix() == [{"m": 0.5}, {"m": 1.5}]


class TestPairedTrialsResume:
    """The resume contract: interrupted runs finish bit-identically."""

    TRIALS = 10
    SEED = 23

    def _run(self, marker_dir, journal=None, backend="serial"):
        return paired_trials(
            spec=chaos_spec(marker_dir), min_samples=self.TRIALS,
            max_samples=self.TRIALS, rng=self.SEED, backend=backend,
            journal=journal,
        )

    def test_journaled_run_matches_plain_run(self, tmp_path):
        reference = self._run(tmp_path)
        with RunJournal.open(tmp_path / "run.jsonl", KEY) as journal:
            outcome = self._run(tmp_path, journal=journal.point("p"))
        assert outcome.estimates == reference.estimates
        assert outcome.trials == reference.trials

    @pytest.mark.parametrize("cut", [1, 4, 9, 10])
    def test_resume_from_any_prefix_is_bit_identical(self, tmp_path, cut):
        reference = self._run(tmp_path)
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            self._run(tmp_path, journal=journal.point("p"))
        # Simulate a crash after `cut` folded trials: keep the header and
        # the first `cut` records, drop the rest.
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1 + cut]) + "\n")
        with RunJournal.open(path, KEY, resume=True) as journal:
            resumed = self._run(tmp_path, journal=journal.point("p"))
        assert resumed.estimates == reference.estimates
        assert resumed.trials == reference.trials

    def test_resume_replays_without_rerunning(self, tmp_path):
        """A fully journaled point replays entirely — no trials re-run."""
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            self._run(tmp_path, journal=journal.point("p"))
        with RunJournal.open(path, KEY, resume=True) as journal:
            # A spec whose every trial would fail proves nothing ran live.
            spec = TrialSpec.create("test_exec_supervise:make_always_fail")
            outcome = paired_trials(
                spec=spec, min_samples=self.TRIALS,
                max_samples=self.TRIALS, rng=self.SEED, backend="serial",
                journal=journal.point("p"),
            )
        assert outcome.trials == self.TRIALS

    def test_resume_on_different_backend_is_bit_identical(self, tmp_path):
        reference = self._run(tmp_path)
        path = tmp_path / "run.jsonl"
        with RunJournal.open(path, KEY) as journal:
            self._run(tmp_path, journal=journal.point("p"))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1 + 5]) + "\n")
        with RunJournal.open(path, KEY, resume=True) as journal:
            resumed = self._run(tmp_path, journal=journal.point("p"),
                                backend="thread")
        assert resumed.estimates == reference.estimates

    def test_legacy_default_path_is_promoted_to_serial(self, tmp_path):
        """``backend=None, parallel=1`` + journal uses the spawned-stream
        serial path, so the journal indices line up with child streams."""
        with RunJournal.open(tmp_path / "run.jsonl", KEY) as journal:
            outcome = paired_trials(
                spec=chaos_spec(tmp_path), min_samples=4, max_samples=4,
                rng=3, journal=journal.point("p"),
            )
            assert journal.counts() == {"p": 4}
        reference = paired_trials(
            spec=chaos_spec(tmp_path), min_samples=4, max_samples=4,
            rng=3, backend="serial",
        )
        assert outcome.estimates == reference.estimates
