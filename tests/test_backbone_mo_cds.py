"""Tests for the MO_CDS baseline."""

from hypothesis import given, settings

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.backbone.verify import verify_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.properties import is_connected_dominating_set
from repro.types import CoveragePolicy

from strategies import connected_graphs, geometric_networks


class TestFigure3:
    def test_is_cds(self, fig3_graph, fig3_clustering):
        mo = build_mo_cds(fig3_clustering)
        assert is_connected_dominating_set(fig3_graph, mo.nodes)
        verify_backbone(mo)

    def test_uses_three_hop_policy(self, fig3_clustering):
        mo = build_mo_cds(fig3_clustering)
        assert mo.policy is CoveragePolicy.THREE_HOP
        assert mo.algorithm == "mo-cds"

    def test_per_target_selection_deterministic(self, fig3_clustering):
        mo = build_mo_cds(fig3_clustering)
        # Head 3 connects 2-hop heads 1, 2, 4 via lowest-id connectors.
        sel = mo.selections[3]
        assert sel.connectors[1] == (7,)
        assert sel.connectors[2] == (8,)
        assert sel.connectors[4] == (9,)

    def test_head1_covers_head4_with_pair(self, fig3_clustering):
        # 3-hop coverage: head 1 must connect to head 4 via a pair.
        sel = build_mo_cds(fig3_clustering).selections[1]
        assert sel.connectors[4] == (5, 9)


class TestComparisonWithStatic:
    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_mo_cds_is_cds(self, graph):
        cs = lowest_id_clustering(graph)
        mo = build_mo_cds(cs)
        assert is_connected_dominating_set(graph, mo.nodes)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_both_selections_cover_all_targets(self, graph):
        cs = lowest_id_clustering(graph)
        static3 = build_static_backbone(cs, CoveragePolicy.THREE_HOP)
        mo = build_mo_cds(cs)
        for head in cs.sorted_heads():
            targets = mo.coverage_sets[head].all_targets
            assert mo.selections[head].covered_targets() == targets
            assert static3.selections[head].covered_targets() == targets

    @settings(max_examples=12, deadline=None)
    @given(net=geometric_networks())
    def test_sizes_comparable_on_geometric(self, net):
        # Figure 6's observation: similar sizes, static slightly better on
        # average (greedy merging vs per-target picks).  Individual samples
        # may wobble a little, hence the small slack.
        cs = lowest_id_clustering(net.graph)
        static = build_static_backbone(cs, CoveragePolicy.THREE_HOP)
        mo = build_mo_cds(cs)
        assert static.size <= mo.size + 2
