"""Tests for the wireless medium, sim nodes and traces."""

import pytest

from repro.errors import ProtocolError, SimulationError
from repro.graph.adjacency import Graph
from repro.sim.engine import Simulator
from repro.sim.medium import WirelessMedium
from repro.sim.messages import Hello, NonClusterHead
from repro.sim.network import SimNetwork
from repro.sim.node import SimNode
from repro.sim.trace import TraceRecorder


@pytest.fixture
def triangle_net():
    return SimNetwork(Graph(edges=[(0, 1), (1, 2), (0, 2)]))


class TestMedium:
    def test_broadcast_reaches_neighbours_only(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        net = SimNetwork(g)
        got = []
        for node in net:
            node.on(Hello, lambda n, s, m: got.append((n.id, s)))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert got == [(1, 0)]  # node 2 is out of range

    def test_latency_applied(self, triangle_net):
        times = {}
        for node in triangle_net:
            node.on(Hello, lambda n, s, m: times.setdefault(n.id, triangle_net.sim.now))
        triangle_net.sim.schedule(0.0, lambda: triangle_net.node(0).send(Hello(origin=0)))
        triangle_net.run_phase()
        assert times == {1: 1.0, 2: 1.0}

    def test_deterministic_delivery_order(self):
        g = Graph(edges=[(0, 2), (1, 2)])
        net = SimNetwork(g)
        order = []
        net.node(2).on(Hello, lambda n, s, m: order.append(s))
        # Both 0 and 1 transmit at t=0; node 2 must hear 0 first.
        net.sim.schedule(0.0, lambda: net.node(1).send(Hello(origin=1)),
                         priority=(1,))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)),
                         priority=(0,))
        net.run_phase()
        assert order == [0, 1]

    def test_unknown_sender_rejected(self, triangle_net):
        with pytest.raises(SimulationError):
            triangle_net.medium.transmit(99, Hello(origin=99))

    def test_invalid_loss_probability(self):
        g = Graph(edges=[(0, 1)])
        sim = Simulator()
        for bad in (-0.1, 1.5, float("nan")):
            with pytest.raises(SimulationError):
                WirelessMedium(sim, g, loss_probability=bad)
        with pytest.raises(SimulationError):
            WirelessMedium(sim, g).set_loss(-1.0)

    def test_total_loss_is_valid(self):
        # p = 1.0 is a legitimate experiment (total blackout), not an error.
        g = Graph(edges=[(0, 1)])
        net = SimNetwork(g, loss_probability=1.0, rng=0)
        got = []
        net.node(1).on(Hello, lambda n, s, m: got.append(s))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert got == []

    def test_lossy_channel_drops_some(self):
        g = Graph(edges=[(0, i) for i in range(1, 200)])
        net = SimNetwork(g, loss_probability=0.5, rng=0)
        got = []
        for node in net:
            node.on(Hello, lambda n, s, m: got.append(n.id))
        net.sim.schedule(0.0, lambda: net.node(0).send(Hello(origin=0)))
        net.run_phase()
        assert 40 < len(got) < 160  # ~half of 199


class TestSimNode:
    def test_duplicate_handler_rejected(self, triangle_net):
        node = triangle_net.node(0)
        node.on(Hello, lambda n, s, m: None)
        with pytest.raises(ProtocolError):
            node.on(Hello, lambda n, s, m: None)

    def test_replace_handler_allowed(self, triangle_net):
        node = triangle_net.node(0)
        node.on(Hello, lambda n, s, m: None)
        node.replace_handler(Hello, lambda n, s, m: None)

    def test_unhandled_message_ignored(self, triangle_net):
        # No NonClusterHead handler anywhere: must not raise.
        triangle_net.sim.schedule(
            0.0, lambda: triangle_net.node(0).send(NonClusterHead(origin=0, head=0))
        )
        triangle_net.run_phase()


class TestTrace:
    def test_counts_and_volume(self, triangle_net):
        triangle_net.sim.schedule(0.0, lambda: triangle_net.node(0).send(Hello(origin=0)))
        triangle_net.sim.schedule(1.0, lambda: triangle_net.node(1).send(
            NonClusterHead(origin=1, head=0)))
        triangle_net.run_phase()
        trace = triangle_net.trace
        assert trace.total_messages == 2
        assert trace.count_by_type() == {"Hello": 1, "NonClusterHead": 1}
        assert trace.total_volume == 1 + 2
        assert trace.volume_by_type()["NonClusterHead"] == 2

    def test_messages_from_and_completion(self, triangle_net):
        triangle_net.sim.schedule(0.0, lambda: triangle_net.node(0).send(Hello(origin=0)))
        triangle_net.run_phase()
        assert len(triangle_net.trace.messages_from(0)) == 1
        assert triangle_net.trace.messages_from(1) == []
        assert triangle_net.trace.completion_time() == 0.0

    def test_render_truncation(self):
        trace = TraceRecorder()
        for i in range(10):
            trace.record(float(i), i, Hello(origin=i))
        text = trace.render(limit=3)
        assert "7 more transmissions" in text

    def test_empty_trace(self):
        trace = TraceRecorder()
        assert trace.completion_time() == 0.0
        assert trace.render() == ""
