"""Cross-module invariants, property-tested end to end.

These tie the whole pipeline together on arbitrary inputs: for any connected
topology and any source, the full chain (cluster → coverage → backbone →
broadcast) must uphold every structural guarantee at once, and serialisation
round-trips must be lossless.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backbone.mo_cds import build_mo_cds
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.graph.connectivity import is_connected
from repro.graph.network import Network
from repro.graph.properties import (
    is_connected_dominating_set,
    is_independent_set,
)
from repro.io.network_json import load_network, save_network
from repro.types import CoveragePolicy, PruningLevel

from strategies import connected_graphs, geometric_networks


class TestPipelineInvariants:
    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs(), data=st.data())
    def test_everything_at_once(self, graph, data):
        """One random pipeline run upholding every guarantee simultaneously."""
        source = data.draw(st.sampled_from(graph.nodes()))
        policy = data.draw(st.sampled_from(list(CoveragePolicy)))
        pruning = data.draw(st.sampled_from(list(PruningLevel)))

        clustering = lowest_id_clustering(graph)
        heads = clustering.clusterheads
        assert is_independent_set(graph, heads)

        coverage = compute_all_coverage_sets(clustering, policy)
        # Coverage targets are always other heads, never members.
        for cov in coverage.values():
            assert cov.all_targets <= heads

        static = build_static_backbone(clustering, policy, coverage)
        assert is_connected_dominating_set(graph, static.nodes)
        si = broadcast_si(graph, static, source)
        assert si.delivered_to_all(graph)

        dyn = broadcast_sd(clustering, source, policy=policy,
                           pruning=pruning, coverage_sets=coverage)
        assert dyn.result.delivered_to_all(graph)
        assert is_connected_dominating_set(graph, dyn.backbone_nodes)
        # Dynamic gateways come from the same witness pool as static ones:
        # every designated forward node is some head's coverage witness.
        witness_pool = set()
        for cov in coverage.values():
            for vs in cov.direct_witnesses.values():
                witness_pool |= vs
            for pairs in cov.indirect_witnesses.values():
                for v, w in pairs:
                    witness_pool |= {v, w}
        for fset in dyn.forward_sets.values():
            assert fset <= witness_pool

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs())
    def test_coverage_sets_mutually_consistent(self, graph):
        """If u covers w at 2 hops, w covers u at 2 hops (symmetric C2)."""
        clustering = lowest_id_clustering(graph)
        covs = compute_all_coverage_sets(clustering,
                                         CoveragePolicy.TWO_FIVE_HOP)
        for u, cov in covs.items():
            for w in cov.c2:
                assert u in covs[w].c2

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs())
    def test_mo_cds_superset_witnesses(self, graph):
        """MO_CDS selections are drawn from the 3-hop witness structure."""
        clustering = lowest_id_clustering(graph)
        mo = build_mo_cds(clustering)
        for head, selection in mo.selections.items():
            cov = mo.coverage_sets[head]
            for target, path in selection.connectors.items():
                if len(path) == 1:
                    assert path[0] in cov.direct_witnesses[target]
                else:
                    assert tuple(path) in cov.indirect_witnesses[target]


class TestSerialisationRoundTrips:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(net=geometric_networks(max_nodes=25))
    def test_network_json_roundtrip(self, net, tmp_path):
        path = tmp_path / "roundtrip.json"
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.graph == net.graph
        assert loaded.radius == net.radius
        # The clustering (and hence everything downstream) is identical.
        assert (lowest_id_clustering(loaded.graph).head_of
                == lowest_id_clustering(net.graph).head_of)

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks(max_nodes=25))
    def test_moved_identity_is_noop(self, net):
        same = net.moved(net.position_array())
        assert same.graph == net.graph
