"""Tests for network/graph generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.graph.connectivity import is_connected
from repro.graph.generators import (
    PAPER_FIGURE3_EDGES,
    chain_graph,
    chain_network,
    grid_graph,
    paper_figure3_graph,
    random_geometric_network,
    star_graph,
)
from repro.graph.properties import degree_stats


class TestFigure3:
    def test_node_and_edge_count(self):
        g = paper_figure3_graph()
        assert g.num_nodes == 10
        assert g.num_edges == len(PAPER_FIGURE3_EDGES)

    def test_clusterheads_pairwise_non_adjacent(self):
        g = paper_figure3_graph()
        for u in (1, 2, 3, 4):
            for v in (1, 2, 3, 4):
                if u != v:
                    assert not g.has_edge(u, v)

    def test_connected(self):
        assert is_connected(paper_figure3_graph())

    def test_key_adjacencies_from_message_trace(self):
        g = paper_figure3_graph()
        # CH_HOP1(9) = {3*, 4}: node 9 adjacent to heads 3 and 4 only.
        assert {h for h in (1, 2, 3, 4) if g.has_edge(9, h)} == {3, 4}
        # CH_HOP2(9) = {1[5]}: 9 adjacent to 5, 5 adjacent to head 1.
        assert g.has_edge(9, 5) and g.has_edge(5, 1)
        # CH_HOP1(6) = {1*, 2}.
        assert {h for h in (1, 2, 3, 4) if g.has_edge(6, h)} == {1, 2}


class TestDeterministicGraphs:
    def test_chain(self):
        g = chain_graph(4)
        assert g.edges() == [(0, 1), (1, 2), (2, 3)]

    def test_chain_single(self):
        assert chain_graph(1).num_nodes == 1

    def test_chain_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            chain_graph(0)

    def test_grid(self):
        g = grid_graph(2, 3)
        assert g.num_nodes == 6
        assert g.num_edges == 7  # 3 vertical + 4 horizontal

    def test_star(self):
        g = star_graph(5)
        assert g.degree(0) == 5
        assert all(g.degree(i) == 1 for i in range(1, 6))


class TestRandomGeometricNetwork:
    def test_connected_by_construction(self):
        net = random_geometric_network(40, 6.0, rng=0)
        assert is_connected(net.graph)
        assert net.num_nodes == 40

    def test_radius_matches_calibration(self):
        net = random_geometric_network(50, 8.0, rng=1)
        assert net.radius == pytest.approx(range_for_target_degree(50, 8.0))

    def test_explicit_radius_override(self):
        net = random_geometric_network(20, 6.0, rng=2, radius=40.0)
        assert net.radius == 40.0

    def test_mean_degree_near_target(self):
        degs = [
            degree_stats(random_geometric_network(80, 12.0, rng=s).graph).mean
            for s in range(8)
        ]
        # Border effects + connectivity conditioning shift it somewhat.
        assert np.mean(degs) == pytest.approx(12.0, rel=0.25)

    def test_deterministic_with_seed(self):
        a = random_geometric_network(30, 6.0, rng=77)
        b = random_geometric_network(30, 6.0, rng=77)
        assert a.graph == b.graph

    def test_shuffle_ids_preserves_structure_size(self):
        net = random_geometric_network(30, 8.0, rng=3, shuffle_ids=True)
        assert net.num_nodes == 30
        assert is_connected(net.graph)

    def test_impossible_connectivity_raises(self):
        with pytest.raises(ExperimentError):
            # Tiny radius on a large area cannot connect 30 nodes.
            random_geometric_network(30, 6.0, rng=4, radius=0.5,
                                     max_attempts=5)

    def test_single_node(self):
        net = random_geometric_network(1, 6.0, rng=5)
        assert net.num_nodes == 1


class TestChainNetwork:
    def test_is_a_chain(self):
        net = chain_network(12)
        degrees = sorted(net.graph.degree(v) for v in net.graph)
        assert degrees == [1, 1] + [2] * 10

    def test_parameter_constraint(self):
        with pytest.raises(ConfigurationError):
            chain_network(5, spacing=1.0, radius=2.5)
