"""Tests for the channel-model seam: base protocol, identity, factory."""

import pytest

from repro.channel import (
    CHANNELS,
    MACS,
    ChannelModel,
    ChannelStats,
    IdealChannel,
    SinrChannel,
    SlottedCsmaMac,
    TdmaMac,
    make_channel,
    make_mac,
)
from repro.errors import ConfigurationError, SimulationError
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.sim.network import SimNetwork


def flood(graph, channel=None, *, loss=0.0, seed=11, source=0):
    net = SimNetwork(graph, loss_probability=loss, rng=seed, channel=channel)
    protocol = DistributedSIBroadcast(net, graph.nodes())
    protocol.start(source)
    net.run_phase()
    return protocol.result(), net


class TestStats:
    def test_as_dict_key_order(self):
        stats = ChannelStats(aired=3, collisions=1, captures=2)
        assert list(stats.as_dict()) == [
            "aired", "collisions", "captures", "half_duplex_drops",
            "mac_deferrals", "mac_drops",
        ]
        assert stats.as_dict()["aired"] == 3

    def test_stats_fold_in_mac_counters(self):
        mac = TdmaMac(frame=4)
        channel = IdealChannel(mac=mac)
        graph = random_geometric_network(15, 5.0, rng=3).graph
        flood(graph, channel)
        stats = channel.stats()
        assert stats.mac_deferrals == mac.deferrals > 0
        assert stats.mac_drops == 0


class TestIdentity:
    def test_ideal_channel_reproduces_bare_medium(self):
        graph = random_geometric_network(30, 8.0, rng=5).graph
        bare, bare_net = flood(graph, None, loss=0.25)
        ideal, ideal_net = flood(graph, IdealChannel(), loss=0.25)
        assert bare_net.trace.entries == ideal_net.trace.entries
        assert bare.received == ideal.received
        assert bare.reception_time == ideal.reception_time
        assert bare.transmissions == ideal.transmissions

    def test_only_channel_runs_report_counters(self):
        graph = random_geometric_network(15, 5.0, rng=3).graph
        bare, _ = flood(graph, None)
        ideal, _ = flood(graph, IdealChannel())
        assert bare.channel is None
        assert ideal.channel is not None
        assert ideal.channel["aired"] == ideal.transmissions
        assert ideal.channel["collisions"] == 0

    def test_base_channel_accepts_everything(self):
        channel = ChannelModel()
        assert channel.accepts(0, 1, 0.0)
        assert channel.air_delay(0) == 0.0


class TestAttachment:
    def test_set_channel_binds_and_detaches(self):
        graph = Graph(edges=[(0, 1)])
        channel = IdealChannel(mac=TdmaMac())
        net = SimNetwork(graph, channel=channel)
        assert channel.medium is net.medium
        assert channel.mac.medium is net.medium
        net.medium.set_channel(None)
        assert net.medium.channel is None

    def test_collision_medium_rejects_channels(self):
        graph = Graph(edges=[(0, 1)])
        with pytest.raises(SimulationError):
            SimNetwork(graph, collisions=True, channel=IdealChannel())

    def test_unbound_mac_has_no_slot(self):
        with pytest.raises(SimulationError):
            TdmaMac().slot


class TestFactory:
    def test_roundtrip_all_names(self):
        network = random_geometric_network(10, 4.0, rng=1)
        for name in MACS:
            mac = make_mac(name, rng=0)
            assert (mac is None) == (name == "instant")
        for name in CHANNELS:
            channel = make_channel(name, network)
            assert isinstance(channel, ChannelModel)
        assert isinstance(make_channel("sinr", network), SinrChannel)
        assert isinstance(make_mac("csma", rng=0), SlottedCsmaMac)
        assert make_channel("none") is None

    def test_unknown_names_rejected(self):
        with pytest.raises(ConfigurationError):
            make_mac("aloha")
        with pytest.raises(ConfigurationError):
            make_channel("rayleigh")

    def test_sinr_needs_a_network(self):
        with pytest.raises(ConfigurationError):
            make_channel("sinr")

    def test_mac_without_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            make_channel("none", mac=TdmaMac())


class TestSinrValidation:
    def test_parameters_validated(self):
        network = random_geometric_network(10, 4.0, rng=1)
        with pytest.raises(SimulationError):
            SinrChannel(network, alpha=0.0)
        with pytest.raises(SimulationError):
            SinrChannel(network, threshold=-1.0)
        with pytest.raises(SimulationError):
            SinrChannel(network, noise_margin=0.5)
        with pytest.raises(SimulationError):
            SinrChannel(network, tx_power=0.0)

    def test_clear_channel_delivers_every_edge(self):
        # Calibration invariant: with a TDMA frame long enough that no two
        # transmissions overlap, every unit-disk edge clears the SINR
        # threshold and flooding delivers to everyone.
        network = random_geometric_network(25, 6.0, rng=9)
        n = network.graph.num_nodes
        channel = SinrChannel(network, mac=TdmaMac(frame=n))
        result, _ = flood(network.graph, channel)
        assert len(result.received) == n
        assert result.channel["collisions"] == 0

    def test_interference_destroys_delivery_without_a_mac(self):
        # The storm worst case: every relay airs the instant it hears the
        # packet, so the air is saturated and flooding starves itself.
        network = random_geometric_network(60, 10.0, rng=9)
        channel = SinrChannel(network)
        result, _ = flood(network.graph, channel)
        assert len(result.received) < network.graph.num_nodes
        assert result.channel["collisions"] > 0
