"""Tests for the Graph adjacency structure."""

import numpy as np
import pytest

from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph


@pytest.fixture
def triangle():
    return Graph(edges=[(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_nodes_without_edges(self):
        g = Graph(nodes=[3, 1, 2])
        assert g.nodes() == [1, 2, 3]
        assert g.num_edges == 0

    def test_edges_create_endpoints(self):
        g = Graph(edges=[(5, 9)])
        assert set(g.nodes()) == {5, 9}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph(edges=[(1, 1)])

    def test_duplicate_edges_idempotent(self):
        g = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1


class TestMutation:
    def test_add_edge_self_loop_rejected(self):
        # Regression for the docstring's ValueError claim: add_edge defers
        # to ordered_edge, which rejects u == v.
        g = Graph(nodes=[3])
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(3, 3)

    def test_failed_self_loop_leaves_graph_unchanged(self):
        g = Graph(edges=[(0, 1)])
        with pytest.raises(ValueError):
            g.add_edge(7, 7)
        assert g.nodes() == [0, 1]  # no node 7 materialised
        assert g.edges() == [(0, 1)]

    def test_add_remove_edge(self, triangle):
        triangle.remove_edge(0, 1)
        assert not triangle.has_edge(0, 1)
        assert triangle.has_edge(1, 2)
        triangle.add_edge(1, 0)
        assert triangle.has_edge(0, 1)

    def test_remove_missing_edge(self, triangle):
        with pytest.raises(KeyError):
            triangle.remove_edge(0, 99)

    def test_remove_node_clears_incident_edges(self, triangle):
        triangle.remove_node(1)
        assert 1 not in triangle
        assert triangle.neighbours(0) == frozenset({2})

    def test_remove_missing_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.remove_node(42)


class TestQueries:
    def test_len_and_iter(self, triangle):
        assert len(triangle) == 3
        assert sorted(triangle) == [0, 1, 2]

    def test_neighbours_is_snapshot(self, triangle):
        snap = triangle.neighbours(0)
        triangle.remove_edge(0, 1)
        assert snap == frozenset({1, 2})

    def test_neighbours_unknown_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.neighbours(7)

    def test_degree(self, triangle):
        assert triangle.degree(0) == 2

    def test_closed_neighbourhood(self, triangle):
        assert triangle.closed_neighbourhood(0) == {0, 1, 2}

    def test_edges_sorted_canonical(self):
        g = Graph(edges=[(3, 1), (2, 0)])
        assert g.edges() == [(0, 2), (1, 3)]


class TestConversion:
    def test_copy_is_independent(self, triangle):
        c = triangle.copy()
        c.remove_edge(0, 1)
        assert triangle.has_edge(0, 1)

    def test_equality(self, triangle):
        assert triangle == Graph(edges=[(0, 2), (1, 2), (0, 1)])
        assert triangle != Graph(edges=[(0, 1)])

    def test_subgraph(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.nodes() == [0, 1]
        assert sub.edges() == [(0, 1)]

    def test_subgraph_unknown_node(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.subgraph([0, 9])

    def test_relabelled(self, triangle):
        g = triangle.relabelled({0: 10, 1: 11, 2: 12})
        assert g.edges() == [(10, 11), (10, 12), (11, 12)]

    def test_relabelled_requires_total_mapping(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.relabelled({0: 10})

    def test_relabelled_requires_injective(self, triangle):
        with pytest.raises(ValueError):
            triangle.relabelled({0: 5, 1: 5, 2: 6})

    def test_adjacency_matrix(self, triangle):
        mat, order = triangle.adjacency_matrix()
        assert order == [0, 1, 2]
        assert mat.sum() == 6  # 3 undirected edges
        assert np.array_equal(mat, mat.T)
        assert not mat.diagonal().any()


class TestBulkAddEdges:
    def test_equivalent_to_add_edge_loop(self):
        pairs = [(0, 1), (1, 2), (3, 0), (2, 0)]
        one = Graph()
        for u, v in pairs:
            one.add_edge(u, v)
        bulk = Graph()
        bulk.add_edges(pairs)
        assert one == bulk

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edges([(0, 1), (2, 2)])

    def test_duplicates_idempotent(self):
        g = Graph()
        g.add_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_empty_iterable(self):
        g = Graph(nodes=[5])
        g.add_edges([])
        assert g.num_edges == 0
