"""Tests for lowest-ID clustering."""

import pytest
from hypothesis import given, settings

from repro.cluster.lowest_id import lowest_id_clustering
from repro.cluster.validate import validate_cluster_structure
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, star_graph
from repro.graph.properties import is_dominating_set, is_independent_set
from repro.types import NodeRole

from strategies import connected_graphs


class TestFigure3Clustering:
    def test_heads(self, fig3_clustering):
        assert sorted(fig3_clustering.clusterheads) == [1, 2, 3, 4]

    def test_memberships(self, fig3_clustering):
        assert sorted(fig3_clustering.members(1)) == [5, 6, 7]
        assert sorted(fig3_clustering.members(2)) == [8]
        assert sorted(fig3_clustering.members(3)) == [9, 10]
        assert sorted(fig3_clustering.members(4)) == []

    def test_validates_as_lowest_id(self, fig3_clustering):
        validate_cluster_structure(fig3_clustering, lowest_id=True)


class TestSmallCases:
    def test_single_node_is_head(self):
        cs = lowest_id_clustering(Graph(nodes=[5]))
        assert cs.clusterheads == frozenset({5})

    def test_isolated_nodes_are_heads(self):
        cs = lowest_id_clustering(Graph(nodes=[1, 2, 3]))
        assert cs.clusterheads == frozenset({1, 2, 3})

    def test_edge_lowest_wins(self):
        cs = lowest_id_clustering(Graph(edges=[(3, 7)]))
        assert cs.clusterheads == frozenset({3})
        assert cs.head_of[7] == 3

    def test_star_hub_not_head_if_high_id(self):
        # Hub 0 has the lowest id, so it wins.
        cs = lowest_id_clustering(star_graph(4))
        assert cs.clusterheads == frozenset({0})

    def test_star_with_low_id_leaf(self):
        # Leaves 0..3 around hub 4: leaf 0 heads, hub joins it, other
        # leaves (not adjacent to 0) become heads themselves.
        g = Graph(edges=[(4, 0), (4, 1), (4, 2), (4, 3)])
        cs = lowest_id_clustering(g)
        assert cs.clusterheads == frozenset({0, 1, 2, 3})
        assert cs.head_of[4] == 0

    def test_chain_alternation(self):
        cs = lowest_id_clustering(chain_graph(6))
        assert cs.clusterheads == frozenset({0, 2, 4})
        assert cs.head_of[1] == 0
        assert cs.head_of[5] == 4

    def test_member_joins_smallest_neighbouring_head(self):
        # 5 is adjacent to heads 1 and 2; must join 1.
        g = Graph(edges=[(1, 5), (2, 5), (1, 3), (2, 4)])
        cs = lowest_id_clustering(g)
        assert cs.head_of[5] == 1


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_heads_form_independent_dominating_set(self, graph):
        cs = lowest_id_clustering(graph)
        assert is_independent_set(graph, cs.clusterheads)
        assert is_dominating_set(graph, cs.clusterheads)

    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_lowest_id_fixpoint(self, graph):
        cs = lowest_id_clustering(graph)
        validate_cluster_structure(cs, lowest_id=True)

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs())
    def test_node_zero_always_head(self, graph):
        # Node 0 has the globally smallest id.
        cs = lowest_id_clustering(graph)
        assert cs.is_clusterhead(0)

    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs())
    def test_roles_partition(self, graph):
        cs = lowest_id_clustering(graph)
        for v in graph.nodes():
            role = cs.role(v)
            assert role in (NodeRole.CLUSTERHEAD, NodeRole.MEMBER)
            assert (role is NodeRole.CLUSTERHEAD) == (v in cs.clusterheads)
