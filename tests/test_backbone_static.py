"""Tests for the static backbone (cluster-based SI-CDS)."""

import pytest
from hypothesis import given, settings

from repro.backbone.static_backbone import build_static_backbone
from repro.backbone.verify import verify_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.graph.generators import chain_graph
from repro.graph.properties import is_connected_dominating_set
from repro.types import CoveragePolicy

from strategies import connected_graphs, geometric_networks


class TestFigure3:
    def test_backbone_nodes(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert bb.nodes == frozenset(range(1, 10))  # 1..9, not 10
        assert bb.size == 9

    def test_gateways(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert bb.gateways == frozenset({5, 6, 7, 8, 9})

    def test_is_cds(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert is_connected_dominating_set(fig3_graph, bb.nodes)
        verify_backbone(bb)

    def test_three_hop_variant_also_cds(self, fig3_graph, fig3_clustering):
        bb = build_static_backbone(fig3_clustering, CoveragePolicy.THREE_HOP)
        assert is_connected_dominating_set(fig3_graph, bb.nodes)

    def test_algorithm_label(self, fig3_clustering):
        assert "2.5-hop" in build_static_backbone(fig3_clustering).algorithm

    def test_contains(self, fig3_clustering):
        bb = build_static_backbone(fig3_clustering)
        assert bb.contains(1) and bb.contains(9)
        assert not bb.contains(10)


class TestCoverageReuse:
    def test_precomputed_sets_accepted(self, fig3_clustering):
        covs = compute_all_coverage_sets(fig3_clustering)
        bb = build_static_backbone(fig3_clustering, coverage_sets=covs)
        assert bb.coverage_sets[4] is covs[4]


class TestEdgeCases:
    def test_single_node(self):
        from repro.graph.adjacency import Graph

        cs = lowest_id_clustering(Graph(nodes=[0]))
        bb = build_static_backbone(cs)
        assert bb.nodes == frozenset({0})

    def test_chain_backbone(self):
        g = chain_graph(7)
        cs = lowest_id_clustering(g)
        bb = build_static_backbone(cs)
        verify_backbone(bb)
        # Heads 0,2,4,6 plus connecting gateways 1,3,5.
        assert bb.nodes == frozenset(range(7))

    def test_two_cliques_bridge(self):
        from repro.graph.adjacency import Graph

        edges = [(0, 1), (0, 2), (1, 2), (5, 6), (5, 7), (6, 7), (2, 5)]
        cs = lowest_id_clustering(Graph(edges=edges))
        bb = build_static_backbone(cs)
        verify_backbone(bb)
        assert {0, 5} <= bb.nodes  # the two heads


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_theorem1_cds_two_five(self, graph):
        cs = lowest_id_clustering(graph)
        bb = build_static_backbone(cs, CoveragePolicy.TWO_FIVE_HOP)
        assert is_connected_dominating_set(graph, bb.nodes)

    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_theorem1_cds_three_hop(self, graph):
        cs = lowest_id_clustering(graph)
        bb = build_static_backbone(cs, CoveragePolicy.THREE_HOP)
        assert is_connected_dominating_set(graph, bb.nodes)

    @settings(max_examples=15, deadline=None)
    @given(net=geometric_networks())
    def test_cds_on_geometric_networks(self, net):
        cs = lowest_id_clustering(net.graph)
        bb = build_static_backbone(cs)
        assert is_connected_dominating_set(net.graph, bb.nodes)

    @settings(max_examples=40, deadline=None)
    @given(graph=connected_graphs())
    def test_contains_all_heads(self, graph):
        cs = lowest_id_clustering(graph)
        bb = build_static_backbone(cs)
        assert cs.clusterheads <= bb.nodes
