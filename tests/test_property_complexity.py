"""Empirical checks of the paper's complexity claims (Section 4).

* Communication: the distributed construction sends O(n) messages — here,
  at most a small constant times n, with a near-perfect linear fit over a
  size sweep.
* Time: cluster formation on a monotone-id chain takes Θ(n) rounds; on
  typical geometric networks the whole construction finishes in far fewer
  rounds than n.
"""

import pytest

from repro.graph.generators import chain_graph, random_geometric_network
from repro.metrics.stats import linear_fit
from repro.protocols.runner import run_distributed_build
from repro.types import CoveragePolicy

#: Messages per node: hello(1) + declaration(1) + CH_HOP1/2(<=2) +
#: GATEWAY(head + forwards, amortised < 2).
MESSAGES_PER_NODE_BOUND = 6


class TestMessageComplexity:
    @pytest.mark.parametrize("n", [15, 30, 60])
    @pytest.mark.parametrize("policy", list(CoveragePolicy))
    def test_linear_bound_per_sample(self, n, policy):
        net = random_geometric_network(n, 8.0, rng=n)
        build = run_distributed_build(net.graph, policy)
        assert build.total_messages <= MESSAGES_PER_NODE_BOUND * n

    def test_linear_fit_over_sweep(self):
        ns = [10, 20, 40, 60, 80]
        msgs = []
        for n in ns:
            net = random_geometric_network(n, 8.0, rng=7 * n)
            msgs.append(run_distributed_build(net.graph).total_messages)
        slope, intercept, r2 = linear_fit(ns, msgs)
        assert r2 > 0.98, f"message count not linear in n (R^2={r2:.3f})"
        assert 2.0 < slope < MESSAGES_PER_NODE_BOUND

    def test_dynamic_construction_cheaper_than_static(self):
        # Without the GATEWAY phase (dynamic backbone) fewer messages.
        net = random_geometric_network(50, 8.0, rng=3)
        full = run_distributed_build(net.graph)
        no_gw = run_distributed_build(net.graph, include_gateway_phase=False)
        assert no_gw.total_messages < full.total_messages


class TestTimeComplexity:
    def test_chain_worst_case_linear_rounds(self):
        # Monotone ids: declarations ripple one hop per unit time.
        for n in (10, 20, 40):
            build = run_distributed_build(chain_graph(n))
            clustering_phase = build.phases[1]
            assert clustering_phase.duration >= n / 2 - 1
            assert clustering_phase.duration <= n + 2

    def test_geometric_networks_much_faster_than_chain(self):
        n = 60
        net = random_geometric_network(n, 10.0, rng=1)
        build = run_distributed_build(net.graph)
        clustering_phase = build.phases[1]
        assert clustering_phase.duration < n / 2

    def test_coverage_phase_constant_rounds(self):
        # CH_HOP1 then CH_HOP2: two message rounds regardless of n.
        for n in (20, 60):
            net = random_geometric_network(n, 8.0, rng=n + 1)
            build = run_distributed_build(net.graph)
            assert build.phases[2].duration <= 3.0


class TestVolumeAblation:
    def test_three_hop_volume_at_least_two_five(self):
        # The 2.5-hop coverage set's cheaper maintenance, in message volume.
        net = random_geometric_network(60, 10.0, rng=9)
        v25 = run_distributed_build(
            net.graph, CoveragePolicy.TWO_FIVE_HOP
        ).total_volume
        v3 = run_distributed_build(
            net.graph, CoveragePolicy.THREE_HOP
        ).total_volume
        assert v3 >= v25
