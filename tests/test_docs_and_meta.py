"""Meta-tests: documentation freshness, docstring coverage, determinism."""

import importlib
import inspect
import pkgutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(repro.__file__).resolve().parents[2]


def all_repro_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


class TestDocstringCoverage:
    def test_every_module_has_a_docstring(self):
        missing = [
            name for name in all_repro_modules()
            if not (importlib.import_module(name).__doc__ or "").strip()
        ]
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_callable_has_a_docstring(self):
        missing = []
        for name in all_repro_modules():
            module = importlib.import_module(name)
            for attr, obj in vars(module).items():
                if attr.startswith("_"):
                    continue
                if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                    continue
                if getattr(obj, "__module__", "") != name:
                    continue
                if not (inspect.getdoc(obj) or "").strip():
                    missing.append(f"{name}.{attr}")
        assert not missing, f"undocumented public items: {missing}"

    def test_public_methods_have_docstrings(self):
        missing = []
        for name in all_repro_modules():
            module = importlib.import_module(name)
            for attr, obj in vars(module).items():
                if attr.startswith("_") or not inspect.isclass(obj):
                    continue
                if obj.__module__ != name:
                    continue
                for mname, method in inspect.getmembers(obj, inspect.isfunction):
                    if mname.startswith("_"):
                        continue
                    if not method.__qualname__.startswith(obj.__name__):
                        continue
                    if not (inspect.getdoc(method) or "").strip():
                        missing.append(f"{name}.{attr}.{mname}")
        assert not missing, f"undocumented methods: {missing}"


class TestGeneratedDocs:
    def test_api_reference_is_fresh(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "gen_api_docs.py"),
             "--check"],
            capture_output=True, text=True, cwd=REPO_ROOT,
        )
        assert result.returncode == 0, result.stderr

    def test_required_documents_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/architecture.md", "docs/protocols.md",
                    "docs/api.md", "CONTRIBUTING.md"):
            assert (REPO_ROOT / doc).exists(), doc


class TestDeterminism:
    def test_distributed_build_trace_is_reproducible(self):
        from repro.graph.generators import random_geometric_network
        from repro.protocols.runner import run_distributed_build

        net = random_geometric_network(30, 8.0, rng=99)
        a = run_distributed_build(net.graph)
        b = run_distributed_build(net.graph)
        trace_a = [(e.time, e.sender, repr(e.message))
                   for e in a.network.trace.entries]
        trace_b = [(e.time, e.sender, repr(e.message))
                   for e in b.network.trace.entries]
        assert trace_a == trace_b

    def test_figure_drivers_reproducible(self):
        from repro.workload.config import PaperEnvironment
        from repro.workload.experiments import run_fig7

        env = PaperEnvironment.quick().scaled(ns=(20,), degrees=(6.0,),
                                              seed=5)
        a = run_fig7(env)[6.0].to_records()
        b = run_fig7(env)[6.0].to_records()
        assert a == b
