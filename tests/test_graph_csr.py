"""Unit tests for the immutable CSR adjacency and its segment primitives."""

import numpy as np
import pytest

from repro.errors import GeometryError, NodeNotFoundError
from repro.geometry.area import Area
from repro.geometry.grid import SpatialGrid
from repro.geometry.placement import uniform_placement
from repro.graph.adjacency import Graph
from repro.graph.build import unit_disk_graph
from repro.graph.connectivity import connected_components
from repro.graph.csr import (
    _PACK3_MAX,
    _PACK4_MAX,
    CSRGraph,
    csr_from_positions,
    grouped_cartesian,
    row_reduce_max,
    row_reduce_min,
    searchsorted_membership,
    sort_quads,
    sort_triples,
)


def _path_graph(n):
    g = Graph(nodes=range(n))
    g.add_edges((i, i + 1) for i in range(n - 1))
    return g


class TestRoundTrip:
    def test_graph_to_csr_and_back(self):
        g = _path_graph(5)
        g.add_edge(0, 4)
        csr = CSRGraph.from_graph(g)
        assert csr.to_graph() == g
        assert csr.num_nodes == 5 and csr.num_edges == 5

    def test_graph_bridge_methods(self):
        g = _path_graph(4)
        csr = g.to_csr()
        assert Graph.from_csr(csr) == g

    def test_permuted_ids_relabel_rows(self):
        g = Graph(nodes=[30, 10, 20])
        g.add_edge(30, 10)
        csr = CSRGraph.from_graph(g)
        assert csr.ids.tolist() == [10, 20, 30]
        assert not csr.has_identity_ids
        assert csr.to_graph() == g

    def test_empty_graph(self):
        csr = CSRGraph.from_graph(Graph())
        assert csr.num_nodes == 0 and csr.num_edges == 0
        assert csr.to_graph() == Graph()


class TestQueries:
    def test_row_of_and_neighbour_ids(self):
        g = Graph(nodes=[5, 7, 9])
        g.add_edge(5, 9)
        csr = CSRGraph.from_graph(g)
        assert csr.row_of(7) == 1
        assert csr.neighbour_ids(5).tolist() == [9]
        assert csr.neighbour_ids(7).tolist() == []

    def test_row_of_unknown_id_raises(self):
        csr = CSRGraph.from_graph(_path_graph(3))
        with pytest.raises(NodeNotFoundError):
            csr.row_of(99)
        g = Graph(nodes=[2, 4])
        with pytest.raises(NodeNotFoundError):
            CSRGraph.from_graph(g).row_of(3)

    def test_has_edge(self):
        csr = CSRGraph.from_graph(_path_graph(3))
        assert csr.has_edge(0, 1) and csr.has_edge(1, 0)
        assert not csr.has_edge(0, 2)
        assert not csr.has_edge(0, 99)

    def test_edge_keys_sorted_directed(self):
        csr = CSRGraph.from_graph(_path_graph(3))
        keys = csr.edge_keys()
        assert keys.tolist() == sorted(keys.tolist())
        assert keys.shape[0] == 2 * csr.num_edges

    def test_ids_must_ascend(self):
        with pytest.raises(GeometryError):
            CSRGraph(np.array([0, 0, 0]), np.empty(0), ids=np.array([2, 1]))


class TestDerivedStructure:
    def test_subgraph_rows_drops_crossing_edges(self):
        g = _path_graph(5)
        csr = CSRGraph.from_graph(g)
        sub = csr.subgraph_rows(np.array([0, 1, 3, 4]))
        assert sub.ids.tolist() == [0, 1, 3, 4]
        want = Graph(nodes=[0, 1, 3, 4])
        want.add_edges([(0, 1), (3, 4)])
        assert sub.to_graph() == want

    def test_giant_component_matches_set_implementation(self):
        g = Graph(nodes=range(7))
        g.add_edges([(0, 1), (2, 3), (3, 4), (4, 2), (5, 6)])
        csr = CSRGraph.from_graph(g)
        rows = csr.giant_component_rows()
        want = max(connected_components(g), key=len)
        assert set(csr.ids[rows].tolist()) == set(want)

    def test_component_labels_partition(self):
        g = Graph(nodes=range(6))
        g.add_edges([(0, 1), (1, 2), (4, 5)])
        labels = CSRGraph.from_graph(g).connected_component_labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert len({labels[0], labels[3], labels[4]}) == 3


class TestFromPositions:
    def test_matches_dict_builder(self):
        rng = np.random.default_rng(3)
        pts = uniform_placement(150, Area(200.0, 200.0), rng=rng)
        csr = csr_from_positions(pts, 30.0)
        assert csr == CSRGraph.from_graph(unit_disk_graph(pts, 30.0))

    def test_torus_matches_dict_builder(self):
        rng = np.random.default_rng(4)
        area = Area(100.0, 100.0)
        pts = uniform_placement(60, area, rng=rng)
        csr = csr_from_positions(pts, 25.0, torus=area)
        assert csr == CSRGraph.from_graph(
            unit_disk_graph(pts, 25.0, torus=area)
        )

    def test_pair_arrays_matches_pairs_within(self):
        rng = np.random.default_rng(5)
        pts = uniform_placement(200, Area(150.0, 150.0), rng=rng)
        grid = SpatialGrid(pts, cell_size=20.0)
        us, vs = grid.pair_arrays(20.0)
        got = {(min(u, v), max(u, v)) for u, v in zip(us.tolist(), vs.tolist())}
        want = {(min(u, v), max(u, v)) for u, v in grid.pairs_within(20.0)}
        assert got == want


class TestSegmentPrimitives:
    def test_row_reduce_min_max_with_empty_groups(self):
        vals = np.array([4, 2, 9, 1])
        offsets = np.array([0, 2, 2, 4])
        assert row_reduce_min(vals, offsets, empty=99).tolist() == [2, 99, 1]
        assert row_reduce_max(vals, offsets, empty=-1).tolist() == [4, -1, 9]

    def test_grouped_cartesian(self):
        grp, a, b = grouped_cartesian(np.array([2, 0, 1]), np.array([1, 3, 2]))
        triples = list(zip(grp.tolist(), a.tolist(), b.tolist()))
        assert triples == [(0, 0, 0), (0, 1, 0), (2, 0, 0), (2, 0, 1)]

    def test_searchsorted_membership(self):
        hay = np.array([2, 5, 9])
        needles = np.array([1, 2, 9, 10])
        assert searchsorted_membership(hay, needles).tolist() == [
            False, True, True, False,
        ]
        assert searchsorted_membership(np.empty(0), needles).tolist() == [
            False] * 4


class TestPackedKeySorts:
    """The packed-int64 fast paths must refuse to overflow, not corrupt."""

    def test_pack_limits_are_exact(self):
        # The limits are the largest n whose key range fits an int64 —
        # one more node and the top key wraps.
        assert _PACK4_MAX**4 <= 2**63 - 1 < (_PACK4_MAX + 1) ** 4
        assert _PACK3_MAX**3 <= 2**63 - 1 < (_PACK3_MAX + 1) ** 3

    @staticmethod
    def _random_columns(rng, n, size, columns):
        return [
            rng.integers(
                0, [7, n - 3, n - 1][min(k, 2)], size=size, dtype=np.int64
            )
            for k in range(columns)
        ]

    @pytest.mark.parametrize("n", [
        10, _PACK4_MAX, _PACK4_MAX + 1, _PACK3_MAX, _PACK3_MAX + 1,
        2**31 - 1,
    ])
    def test_sort_quads_identical_across_tiers(self, n):
        rng = np.random.default_rng(n % 2**32)
        head, ch, v, w = self._random_columns(rng, n, 400, 4)
        got = sort_quads(n, head, ch, v, w)
        order = np.lexsort((w, v, ch, head))
        want = (head[order], ch[order], v[order], w[order])
        for g, e in zip(got, want):
            assert np.array_equal(g, e)

    @pytest.mark.parametrize("n", [
        10, _PACK3_MAX, _PACK3_MAX + 1, 2**31 - 1,
    ])
    def test_sort_triples_identical_across_tiers(self, n):
        rng = np.random.default_rng(n % 2**32)
        a, b, c = self._random_columns(rng, n, 400, 3)
        got = sort_triples(n, a, b, c)
        order = np.lexsort((c, b, a))
        want = (a[order], b[order], c[order])
        for g, e in zip(got, want):
            assert np.array_equal(g, e)

    def test_overflow_tier_boundary_would_wrap(self):
        # Sanity: past the limit the packed key really does wrap — the
        # guard is load-bearing.  (_PACK3_MAX + 1 == 2**21 is the one
        # conservative case: its top key is exactly 2**63 - 1.)
        n = _PACK3_MAX + 2
        cols = np.array([n - 1], dtype=np.int64)
        with np.errstate(over="ignore"):
            top = (cols * n + cols) * n + cols
        assert top[0] < 0  # wrapped negative under int64

    def test_empty_input(self):
        e = np.empty(0, dtype=np.int64)
        for arr in sort_quads(2**31 - 1, e, e, e, e):
            assert arr.shape == (0,)
        for arr in sort_triples(2**31 - 1, e, e, e):
            assert arr.shape == (0,)
