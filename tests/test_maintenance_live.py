"""Tests for the live maintenance session (incremental message accounting)."""

import numpy as np
import pytest

from repro.geometry.mobility import RandomWalk
from repro.graph.generators import random_geometric_network
from repro.maintenance.live import LiveMaintenanceSession


def make_session(speed: float, seed: int = 21, n: int = 40):
    net = random_geometric_network(n, 10.0, rng=seed)
    return LiveMaintenanceSession(
        net, RandomWalk(speed=speed, area=net.area, rng=seed)
    )


class TestLiveSession:
    def test_stationary_zero_cost(self):
        session = make_session(speed=0.0)
        report = session.step()
        assert report.total == 0
        assert report.link_changes == 0
        assert report.saving == 1.0  # the whole rebuild cost is avoided
        assert report.rebuild_messages > 0

    def test_movement_costs_messages(self):
        session = make_session(speed=4.0)
        report = session.step()
        assert report.link_changes > 0
        assert report.total > 0
        assert report.messages["hello"] > 0

    def test_incremental_cheaper_than_rebuild_at_low_speed(self):
        session = make_session(speed=0.5)
        totals, rebuilds = 0, 0
        for report in session.run(10):
            totals += report.total
            rebuilds += report.rebuild_messages
        assert totals < rebuilds
        assert totals > 0  # slow movement still costs something

    def test_cost_grows_with_speed(self):
        def total_cost(speed):
            session = make_session(speed=speed, seed=33)
            return sum(r.total for r in session.run(8))

        assert total_cost(0.5) < total_cost(6.0)

    def test_report_fields_consistent(self):
        session = make_session(speed=2.0)
        report = session.step()
        assert report.total == sum(report.messages.values())
        assert 0.0 <= report.saving <= 1.0
        assert set(report.messages) == {
            "hello", "declaration", "ch_hop1", "ch_hop2", "gateway",
        }

    def test_run_returns_per_epoch_reports(self):
        session = make_session(speed=1.0)
        reports = session.run(5, dt=2.0)
        assert [r.time for r in reports] == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_rebuild_cost_matches_distributed_build_magnitude(self):
        # The analytic rebuild cost should approximate what the simulator
        # actually sends for a full construction of the same snapshot.
        from repro.protocols.runner import run_distributed_build

        session = make_session(speed=0.0, seed=8)
        report = session.step()
        build = run_distributed_build(session.network.graph)
        assert report.rebuild_messages == pytest.approx(
            build.total_messages, rel=0.05
        )
