"""Hypothesis strategies shared across the test suite."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.adjacency import Graph
from repro.graph.connectivity import is_connected
from repro.graph.generators import random_geometric_network


@st.composite
def connected_graphs(draw, min_nodes: int = 2, max_nodes: int = 24) -> Graph:
    """Arbitrary connected graphs: a random spanning tree plus extra edges."""
    n = draw(st.integers(min_nodes, max_nodes))
    graph = Graph(nodes=range(n))
    # Random spanning tree: attach each node i > 0 to a random earlier node.
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        graph.add_edge(i, parent)
    extra = draw(st.integers(0, min(3 * n, n * (n - 1) // 2)))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            graph.add_edge(u, v)
    assert is_connected(graph)
    return graph


@st.composite
def geometric_networks(draw, min_nodes: int = 5, max_nodes: int = 40):
    """Connected unit-disk networks drawn from the paper's environment."""
    n = draw(st.integers(min_nodes, max_nodes))
    degree = draw(st.sampled_from([5.0, 6.0, 10.0, 14.0, 18.0]))
    # Keep the target degree feasible for the node count.
    degree = min(degree, float(n - 1))
    seed = draw(st.integers(0, 2**32 - 1))
    return random_geometric_network(
        n, degree, rng=seed, max_attempts=30_000
    )


@st.composite
def sources_in(draw, graph: Graph) -> int:
    """A node id of ``graph``."""
    return draw(st.sampled_from(graph.nodes()))
