"""Property tests: the CSR array pipeline is bit-identical to the dict one.

Every array kernel of the hot path — unit-disk construction, lowest-ID
clustering, both coverage policies and gateway selection — must produce
*exactly* the same result as the reference dict/set implementation, on
arbitrary raw placements: connected or not (isolated nodes included; no
connectivity rejection here), borderless torus wrap, and permuted
non-contiguous node ids.  This is the contract that lets
``compute_all_coverage_sets`` and ``build_static_backbone`` dispatch to the
array path purely on size.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backbone.gateway_selection import (
    select_gateways,
    select_gateways_batch,
)
from repro.cluster.lowest_id import lowest_id_clustering, lowest_id_rows
from repro.coverage.three_hop import three_hop_arrays, three_hop_coverage
from repro.coverage.two_five_hop import (
    two_five_hop_arrays,
    two_five_hop_coverage,
)
from repro.geometry.area import Area
from repro.geometry.placement import uniform_placement
from repro.graph.build import unit_disk_csr, unit_disk_graph
from repro.graph.csr import CSRGraph
from repro.types import CoveragePolicy


@st.composite
def placements(draw):
    """Raw placement scenarios: positions, radius, optional torus and ids.

    Placements are *not* rejected for connectivity, so sparse draws carry
    isolated nodes and multi-component graphs; dense draws approach
    cliques.  Ids are sometimes a non-contiguous permutation, so row order
    and id order genuinely differ.
    """
    n = draw(st.integers(1, 60))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    side = draw(st.sampled_from([60.0, 120.0, 250.0]))
    radius = draw(st.sampled_from([15.0, 35.0, 70.0]))
    area = Area(side, side)
    positions = uniform_placement(n, area, rng=rng)
    torus = area if draw(st.booleans()) else None
    if draw(st.booleans()):
        ids = [int(v) for v in rng.permutation(10 * n)[:n]]
    else:
        ids = None
    return positions, radius, ids, torus


def _both_graphs(scenario):
    positions, radius, ids, torus = scenario
    graph = unit_disk_graph(positions, radius, ids=ids, torus=torus)
    csr = unit_disk_csr(positions, radius, ids=ids, torus=torus)
    return graph, csr


@settings(max_examples=60, deadline=None)
@given(placements())
def test_construction_matches_dict_builder(scenario):
    graph, csr = _both_graphs(scenario)
    assert csr == CSRGraph.from_graph(graph)
    assert csr.to_graph() == graph


@settings(max_examples=60, deadline=None)
@given(placements())
def test_clustering_matches_dict_implementation(scenario):
    graph, csr = _both_graphs(scenario)
    structure = lowest_id_clustering(graph)
    head_row = lowest_id_rows(csr)
    ids = csr.ids
    got = dict(zip(ids.tolist(), ids[head_row].tolist()))
    assert got == structure.head_of


@settings(max_examples=40, deadline=None)
@given(placements())
def test_coverage_matches_dict_implementation(scenario):
    graph, csr = _both_graphs(scenario)
    structure = lowest_id_clustering(graph)
    head_row = lowest_id_rows(csr)
    for arrays_fn, dict_fn in (
        (two_five_hop_arrays, two_five_hop_coverage),
        (three_hop_arrays, three_hop_coverage),
    ):
        got = arrays_fn(csr, head_row).materialise_all()
        want = {h: dict_fn(structure, h) for h in structure.sorted_heads()}
        assert got == want
        assert list(got) == list(want)  # same (ascending) head order


@settings(max_examples=40, deadline=None)
@given(placements())
def test_gateway_selection_matches_dict_implementation(scenario):
    graph, csr = _both_graphs(scenario)
    structure = lowest_id_clustering(graph)
    head_row = lowest_id_rows(csr)
    for policy, arrays_fn, dict_fn in (
        (CoveragePolicy.TWO_FIVE_HOP, two_five_hop_arrays,
         two_five_hop_coverage),
        (CoveragePolicy.THREE_HOP, three_hop_arrays, three_hop_coverage),
    ):
        arrays = arrays_fn(csr, head_row)
        got = select_gateways_batch(arrays).materialise_all()
        want = {
            h: select_gateways(dict_fn(structure, h))
            for h in structure.sorted_heads()
        }
        assert got == want
