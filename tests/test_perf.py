"""Tests for the per-stage performance counters."""

import time

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def _clean_counters():
    was = perf.enabled()
    was_mem = perf.memory_enabled()
    perf.reset()
    yield
    perf.enable(was)
    perf.enable_memory(was_mem)
    perf.reset()


class TestDisabled:
    def test_stage_records_nothing(self):
        perf.enable(False)
        with perf.stage("clustering"):
            pass
        assert perf.snapshot() == {}

    def test_timed_passes_through(self):
        perf.enable(False)

        @perf.timed("coverage")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert perf.snapshot() == {}


class TestEnabled:
    def test_calls_and_seconds_accumulate(self):
        perf.enable()
        for _ in range(3):
            with perf.stage("selection"):
                time.sleep(0.001)
        snap = perf.snapshot()
        assert snap["selection"]["calls"] == 3
        assert snap["selection"]["seconds"] > 0.0

    def test_nested_stages_attribute_exclusively(self):
        perf.enable()
        with perf.stage("outer"):
            time.sleep(0.02)
            with perf.stage("inner"):
                time.sleep(0.02)
        snap = perf.snapshot()
        # The outer stage's clock pauses while the inner one runs: the
        # inner 20ms must not be double-counted into the outer stage.
        assert snap["inner"]["seconds"] >= 0.015
        assert 0.015 <= snap["outer"]["seconds"] < 0.035

    def test_timed_decorator_counts(self):
        perf.enable()

        @perf.timed("broadcast")
        def f():
            return 7

        assert f() == 7 and f() == 7
        assert perf.snapshot()["broadcast"]["calls"] == 2

    def test_reset_drops_everything(self):
        perf.enable()
        with perf.stage("placement"):
            pass
        perf.reset()
        assert perf.snapshot() == {}


class TestMemorySampling:
    def test_off_by_default_records_no_bytes(self):
        perf.enable()
        perf.enable_memory(False)
        with perf.stage("coverage"):
            _ = bytearray(1 << 20)
        snap = perf.snapshot()
        assert "alloc_bytes" not in snap["coverage"]
        assert "peak_bytes" not in snap["coverage"]

    def test_stage_captures_alloc_and_peak(self):
        perf.enable()
        perf.enable_memory()
        with perf.stage("coverage"):
            buf = bytearray(4 << 20)
            del buf
        snap = perf.snapshot()
        # The 4 MiB buffer was freed before exit, so the *peak* sees it
        # while the net allocation stays small.
        assert snap["coverage"]["peak_bytes"] >= 4 << 20
        assert snap["coverage"]["alloc_bytes"] < 4 << 20

    def test_nested_stage_allocation_is_exclusive(self):
        perf.enable()
        perf.enable_memory()
        with perf.stage("outer"):
            with perf.stage("inner"):
                self.held = bytearray(4 << 20)
        snap = perf.snapshot()
        del self.held
        # The inner stage's 4 MiB must not leak into the outer stage's
        # net-allocation number.
        assert snap["inner"]["alloc_bytes"] >= 4 << 20
        assert snap["outer"]["alloc_bytes"] < 1 << 20

    def test_peak_rss_is_positive_on_posix(self):
        assert perf.peak_rss_bytes() > 0


class TestReport:
    def test_render_orders_canonical_stages_first(self):
        counters = {
            "zeta": {"seconds": 0.1, "calls": 1},
            "placement": {"seconds": 0.2, "calls": 2},
            "broadcast": {"seconds": 0.3, "calls": 3},
        }
        report = perf.render_report(counters)
        lines = report.splitlines()
        assert lines[1].startswith("placement")
        assert lines[2].startswith("broadcast")
        assert lines[3].startswith("zeta")
        assert lines[-1].startswith("total")

    def test_render_adds_memory_columns_when_sampled(self):
        counters = {
            "coverage": {"seconds": 0.1, "calls": 1,
                         "alloc_bytes": 2048, "peak_bytes": 5 << 20},
        }
        report = perf.render_report(counters)
        assert "alloc" in report.splitlines()[0]
        assert "2.0KiB" in report
        assert "5.0MiB" in report
        assert "peak RSS" in report

    def test_render_omits_memory_columns_without_samples(self):
        counters = {"coverage": {"seconds": 0.1, "calls": 1}}
        report = perf.render_report(counters)
        assert "alloc" not in report
        assert "peak RSS" not in report

    def test_pipeline_functions_report_under_their_stage(self):
        from repro.graph.generators import random_geometric_network

        perf.enable()
        net = random_geometric_network(25, 8.0, rng=1)
        snap = perf.snapshot()
        assert snap["placement"]["calls"] >= 1
        assert snap["construction"]["calls"] >= 1
        assert net.num_nodes == 25
