"""Tests for the per-stage performance counters."""

import time

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def _clean_counters():
    was = perf.enabled()
    perf.reset()
    yield
    perf.enable(was)
    perf.reset()


class TestDisabled:
    def test_stage_records_nothing(self):
        perf.enable(False)
        with perf.stage("clustering"):
            pass
        assert perf.snapshot() == {}

    def test_timed_passes_through(self):
        perf.enable(False)

        @perf.timed("coverage")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert perf.snapshot() == {}


class TestEnabled:
    def test_calls_and_seconds_accumulate(self):
        perf.enable()
        for _ in range(3):
            with perf.stage("selection"):
                time.sleep(0.001)
        snap = perf.snapshot()
        assert snap["selection"]["calls"] == 3
        assert snap["selection"]["seconds"] > 0.0

    def test_nested_stages_attribute_exclusively(self):
        perf.enable()
        with perf.stage("outer"):
            time.sleep(0.02)
            with perf.stage("inner"):
                time.sleep(0.02)
        snap = perf.snapshot()
        # The outer stage's clock pauses while the inner one runs: the
        # inner 20ms must not be double-counted into the outer stage.
        assert snap["inner"]["seconds"] >= 0.015
        assert 0.015 <= snap["outer"]["seconds"] < 0.035

    def test_timed_decorator_counts(self):
        perf.enable()

        @perf.timed("broadcast")
        def f():
            return 7

        assert f() == 7 and f() == 7
        assert perf.snapshot()["broadcast"]["calls"] == 2

    def test_reset_drops_everything(self):
        perf.enable()
        with perf.stage("placement"):
            pass
        perf.reset()
        assert perf.snapshot() == {}


class TestReport:
    def test_render_orders_canonical_stages_first(self):
        counters = {
            "zeta": {"seconds": 0.1, "calls": 1},
            "placement": {"seconds": 0.2, "calls": 2},
            "broadcast": {"seconds": 0.3, "calls": 3},
        }
        report = perf.render_report(counters)
        lines = report.splitlines()
        assert lines[1].startswith("placement")
        assert lines[2].startswith("broadcast")
        assert lines[3].startswith("zeta")
        assert lines[-1].startswith("total")

    def test_pipeline_functions_report_under_their_stage(self):
        from repro.graph.generators import random_geometric_network

        perf.enable()
        net = random_geometric_network(25, 8.0, rng=1)
        snap = perf.snapshot()
        assert snap["placement"]["calls"] >= 1
        assert snap["construction"]["calls"] >= 1
        assert net.num_nodes == 25
