"""Tests for the event queue and simulation engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


class TestEventQueue:
    def test_time_ordering(self):
        q = EventQueue()
        order = []
        q.push(2.0, lambda: order.append("b"))
        q.push(1.0, lambda: order.append("a"))
        q.pop().action()
        q.pop().action()
        assert order == ["a", "b"]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("second"), priority=(5,))
        q.push(1.0, lambda: order.append("first"), priority=(2,))
        q.pop().action()
        q.pop().action()
        assert order == ["first", "second"]

    def test_seq_breaks_full_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append(1), priority=(0,))
        q.push(1.0, lambda: order.append(2), priority=(0,))
        q.pop().action()
        q.pop().action()
        assert order == [1, 2]  # insertion-stable

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, lambda: None)
        assert q.peek_time() == 3.0
        assert len(q) == 1


class TestSimulator:
    def test_schedule_and_run(self):
        sim = Simulator()
        hits = []
        sim.schedule(5.0, lambda: hits.append(sim.now))
        sim.schedule(2.0, lambda: hits.append(sim.now))
        assert sim.run() == 2
        assert hits == [2.0, 5.0]
        assert sim.now == 5.0

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(10))
        sim.run(until=5.0)
        assert hits == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_cascading_events(self):
        sim = Simulator()
        hits = []

        def fire(depth):
            hits.append(depth)
            if depth < 3:
                sim.schedule(1.0, lambda: fire(depth + 1))

        sim.schedule(0.0, lambda: fire(0))
        sim.run_to_quiescence()
        assert hits == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.5, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator(max_events=50)

        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run_to_quiescence()

    def test_runaway_guard_checks_before_executing(self):
        # The guard must fire *before* event max_events + 1 runs: exactly
        # max_events events execute, and the offending event stays queued.
        sim = Simulator(max_events=10)
        hits = []

        def loop():
            hits.append(sim.now)
            sim.schedule(1.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run_to_quiescence()
        assert len(hits) == 10
        assert sim.events_processed == 10
        assert sim.pending == 1

    def test_guard_counts_per_run_not_cumulatively(self):
        # Two consecutive runs, each under the budget, must not trip the
        # guard even though their combined event count exceeds it.
        sim = Simulator(max_events=5)
        for t in range(4):
            sim.schedule(float(t), lambda: None)
        assert sim.run() == 4
        for t in range(4):
            sim.schedule(float(t), lambda: None)
        assert sim.run() == 4
        assert sim.events_processed == 8

    def test_events_processed_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(float(t), lambda: None)
        sim.run()
        assert sim.events_processed == 5
