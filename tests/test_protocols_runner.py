"""Tests for the distributed-build runner and distributed broadcasts."""

import pytest
from hypothesis import given, settings

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.protocols.runner import (
    run_distributed_build,
    run_distributed_sd_broadcast,
    run_distributed_si_broadcast,
)
from repro.types import CoveragePolicy, PruningLevel

from strategies import connected_graphs


class TestDistributedBuild:
    def test_phases_in_order(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        assert [p.name for p in build.phases] == [
            "hello", "clustering", "coverage", "gateway",
        ]

    def test_skip_gateway_phase(self, fig3_graph):
        build = run_distributed_build(fig3_graph, include_gateway_phase=False)
        assert [p.name for p in build.phases] == [
            "hello", "clustering", "coverage",
        ]
        # Selections still computed locally so the Backbone object is whole.
        assert build.backbone.nodes == frozenset(range(1, 10))

    def test_total_message_count_linear_bound(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        n = fig3_graph.num_nodes
        # hello(n) + clustering(n) + chhop1+chhop2(<=2n) + gateway(<=2n).
        assert build.total_messages <= 6 * n
        assert build.total_messages == sum(p.messages for p in build.phases)
        assert build.total_volume > 0

    def test_matches_centralised_structures(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        central = build_static_backbone(lowest_id_clustering(fig3_graph))
        assert build.backbone.nodes == central.nodes
        assert build.structure.head_of == central.structure.head_of

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs(max_nodes=20))
    def test_equivalence_three_hop(self, graph):
        build = run_distributed_build(graph, CoveragePolicy.THREE_HOP)
        central = build_static_backbone(
            lowest_id_clustering(graph), CoveragePolicy.THREE_HOP
        )
        assert build.backbone.nodes == central.nodes


class TestDistributedBroadcasts:
    def test_si_broadcast_matches_static_flood(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        result, stats = run_distributed_si_broadcast(build, 1)
        assert result.forward_nodes == frozenset(range(1, 10))
        assert stats.messages == result.transmissions == 9
        assert result.delivered_to_all(fig3_graph)

    def test_sd_broadcast_matches_centralised(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        result, stats = run_distributed_sd_broadcast(build, 1)
        central = broadcast_sd(lowest_id_clustering(fig3_graph), 1)
        assert result.forward_nodes == central.result.forward_nodes
        assert stats.messages == result.transmissions

    def test_sd_broadcast_from_member(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        result, _stats = run_distributed_sd_broadcast(build, 10)
        assert result.delivered_to_all(fig3_graph)
        assert 10 in result.forward_nodes

    def test_multiple_broadcasts_reuse_network(self, fig3_graph):
        build = run_distributed_build(fig3_graph)
        r1, _ = run_distributed_sd_broadcast(build, 1)
        r2, _ = run_distributed_sd_broadcast(build, 4)
        assert r1.delivered_to_all(fig3_graph)
        assert r2.delivered_to_all(fig3_graph)
        assert r2.source == 4

    @settings(max_examples=20, deadline=None)
    @given(graph=connected_graphs(max_nodes=20))
    def test_sd_equivalence_random(self, graph):
        for policy in CoveragePolicy:
            build = run_distributed_build(graph, policy,
                                          include_gateway_phase=False)
            for pruning in (PruningLevel.FULL, PruningLevel.NONE):
                result, _ = run_distributed_sd_broadcast(build, 0, pruning)
                central = broadcast_sd(
                    lowest_id_clustering(graph), 0,
                    policy=policy, pruning=pruning,
                )
                assert result.forward_nodes == central.result.forward_nodes
                assert result.delivered_to_all(graph)
