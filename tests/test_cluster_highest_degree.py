"""Tests for the highest-degree clustering extension."""

from hypothesis import given, settings

from repro.cluster.highest_degree import highest_degree_clustering
from repro.graph.adjacency import Graph
from repro.graph.generators import star_graph
from repro.graph.properties import is_dominating_set, is_independent_set

from strategies import connected_graphs


class TestHighestDegree:
    def test_star_hub_always_wins(self):
        # Hub 4 has degree 4; under lowest-ID leaf 0 would win instead.
        g = Graph(edges=[(4, 0), (4, 1), (4, 2), (4, 3)])
        cs = highest_degree_clustering(g)
        assert cs.clusterheads == frozenset({4})

    def test_degree_tie_broken_by_lower_id(self):
        g = Graph(edges=[(0, 1)])
        cs = highest_degree_clustering(g)
        assert cs.clusterheads == frozenset({0})

    def test_members_join_best_priority_head(self):
        # 5 adjacent to heads 0 (degree 3) and 1 (degree 2): joins 0.
        g = Graph(edges=[(0, 5), (0, 6), (0, 7), (1, 5), (1, 8)])
        cs = highest_degree_clustering(g)
        assert cs.is_clusterhead(0)
        assert cs.head_of[5] == 0

    @settings(max_examples=60, deadline=None)
    @given(graph=connected_graphs())
    def test_heads_form_independent_dominating_set(self, graph):
        cs = highest_degree_clustering(graph)
        assert is_independent_set(graph, cs.clusterheads)
        assert is_dominating_set(graph, cs.clusterheads)

    @settings(max_examples=25, deadline=None)
    @given(graph=connected_graphs(min_nodes=6, max_nodes=20))
    def test_no_more_heads_than_lowest_id_on_stars(self, graph):
        # Not a theorem in general, but both must at least cluster validly;
        # this asserts the structures are internally consistent.
        from repro.cluster.validate import validate_cluster_structure

        validate_cluster_structure(highest_degree_clustering(graph))

    def test_star_leaves_dominated(self):
        cs = highest_degree_clustering(star_graph(9))
        assert cs.num_clusters == 1
