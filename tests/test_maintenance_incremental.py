"""Tests for incremental lowest-ID clustering maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.lowest_id import lowest_id_clustering
from repro.errors import NodeNotFoundError
from repro.graph.adjacency import Graph
from repro.graph.generators import chain_graph, random_geometric_network
from repro.maintenance.incremental import IncrementalLowestIdClustering

from strategies import connected_graphs


class TestBasics:
    def test_initial_state_matches_full(self, fig3_graph):
        inc = IncrementalLowestIdClustering(fig3_graph)
        assert inc.structure().head_of == \
            lowest_id_clustering(fig3_graph).head_of

    def test_owns_a_copy(self, fig3_graph):
        inc = IncrementalLowestIdClustering(fig3_graph)
        inc.add_edge(5, 10)
        assert not fig3_graph.has_edge(5, 10)

    def test_add_edge_between_heads_demotes_one(self):
        g = Graph(edges=[(1, 3), (2, 4)])  # heads 1 and 2
        inc = IncrementalLowestIdClustering(g)
        assert inc.is_clusterhead(1) and inc.is_clusterhead(2)
        summary = inc.add_edge(1, 2)
        assert inc.is_clusterhead(1)
        assert not inc.is_clusterhead(2)
        assert 2 in summary.flipped
        assert inc.structure().head_of[2] == 1

    def test_remove_edge_promotes_member(self):
        g = Graph(edges=[(1, 2)])
        inc = IncrementalLowestIdClustering(g)
        summary = inc.remove_edge(1, 2)
        assert inc.is_clusterhead(2)
        assert 2 in summary.flipped

    def test_reassignment_without_flip(self):
        # 5 belongs to head 1; removing (1,5) while (2,5) exists reassigns.
        g = Graph(edges=[(1, 5), (2, 5), (1, 7), (2, 8)])
        inc = IncrementalLowestIdClustering(g)
        assert inc.structure().head_of[5] == 1
        summary = inc.remove_edge(1, 5)
        assert inc.structure().head_of[5] == 2
        assert 5 in summary.reassigned
        assert 5 not in summary.flipped

    def test_unknown_endpoint(self):
        inc = IncrementalLowestIdClustering(chain_graph(3))
        with pytest.raises(NodeNotFoundError):
            inc.add_edge(0, 99)

    def test_remove_missing_edge(self):
        inc = IncrementalLowestIdClustering(chain_graph(3))
        with pytest.raises(KeyError):
            inc.remove_edge(0, 2)

    def test_cascade_along_chain(self):
        # Removing (0,1) on a chain flips 1 to head, which flips 2 to
        # member... the repair ripples down the ids.
        inc = IncrementalLowestIdClustering(chain_graph(6))
        assert [inc.is_clusterhead(v) for v in range(6)] == \
            [True, False, True, False, True, False]
        summary = inc.remove_edge(0, 1)
        assert [inc.is_clusterhead(v) for v in range(6)] == \
            [True, True, False, True, False, True]
        assert len(summary.flipped) == 5


class TestEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(graph=connected_graphs(max_nodes=15),
           seed=st.integers(0, 10_000))
    def test_random_event_stream_matches_full_recompute(self, graph, seed):
        rng = np.random.default_rng(seed)
        inc = IncrementalLowestIdClustering(graph)
        nodes = graph.nodes()
        for _ in range(15):
            u, v = (int(x) for x in rng.choice(nodes, 2, replace=False))
            if inc.graph.has_edge(u, v):
                inc.remove_edge(u, v)
            else:
                inc.add_edge(u, v)
            assert inc.structure().head_of == \
                lowest_id_clustering(inc.graph).head_of

    def test_repairs_are_local_on_geometric_networks(self):
        net = random_geometric_network(80, 8.0, rng=9)
        inc = IncrementalLowestIdClustering(net.graph)
        rng = np.random.default_rng(10)
        nodes = net.graph.nodes()
        touched = []
        for _ in range(100):
            u, v = (int(x) for x in rng.choice(nodes, 2, replace=False))
            if inc.graph.has_edge(u, v):
                s = inc.remove_edge(u, v)
            else:
                s = inc.add_edge(u, v)
            touched.append(s.touched)
        # Repairs touch a small neighbourhood, not the whole network.
        assert np.mean(touched) < 0.2 * len(nodes)
