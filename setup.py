"""Legacy setup shim.

Kept so `pip install -e .` / `python setup.py develop` work on offline
machines without the `wheel` package (PEP 660 editable builds need it);
all real metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
