# Convenience targets for the repro library.

PYTHON ?= python

.PHONY: install test bench bench-paper bench-topology bench-faults bench-channel bench-broadcast bench-mobility bench-parallel bench-serve chaos serve-chaos figures examples lint clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-verbose:
	$(PYTHON) -m pytest tests/ -v

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-paper:
	REPRO_BENCH_FIDELITY=paper $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-topology:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_topology_cache.py

bench-faults:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fault_sweep.py

bench-channel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_channel.py --gate

bench-broadcast:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_broadcast_kernels.py --gate

bench-mobility:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_mobility_kernels.py --gate

bench-parallel:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_trials_parallel.py

bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_chaos_exec.py tests/test_exec_supervise.py tests/test_exec_journal.py -m "slow or not slow"
	PYTHONPATH=src $(PYTHON) benchmarks/bench_chaos_exec.py

serve-chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_chaos_serve.py tests/test_serve_protocol.py tests/test_serve_service.py tests/test_serve_server.py -m "slow or not slow"
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py --quick

figures:
	$(PYTHON) -m repro.cli experiment fig6 --ci
	$(PYTHON) -m repro.cli experiment fig7 --ci
	$(PYTHON) -m repro.cli experiment fig8 --ci

examples:
	@for ex in examples/*.py; do echo "== $$ex =="; $(PYTHON) $$ex; echo; done

clean:
	rm -rf .pytest_cache .hypothesis src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
