"""Ablation (extension): the latency price of forwarding restrictions.

The paper evaluates forward-node counts only; restricting forwarding to a
backbone can also lengthen delivery paths.  This bench measures broadcast
latency stretch (achieved latency over the source's eccentricity, the BFS
optimum that blind flooding attains) and the reception redundancy each
scheme leaves on the channel — the two sides of the efficiency trade.
"""

import numpy as np
import pytest

from repro.analysis.latency import latency_stretch
from repro.analysis.redundancy import redundancy_report
from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network

SCENARIOS = [(60, 6.0), (60, 18.0)]


def measure():
    rng = np.random.default_rng(99)
    rows = []
    for n, d in SCENARIOS:
        stretch = {"flooding": [], "static": [], "dynamic": []}
        copies = {"flooding": [], "static": [], "dynamic": []}
        for seed in range(12):
            net = random_geometric_network(n, d, rng=rng)
            cs = lowest_id_clustering(net.graph)
            source = int(rng.choice(net.graph.nodes()))
            static = build_static_backbone(cs)
            results = {
                "flooding": blind_flooding(net.graph, source),
                "static": broadcast_si(net.graph, static, source),
                "dynamic": broadcast_sd(cs, source).result,
            }
            for label, result in results.items():
                stretch[label].append(latency_stretch(net.graph, result))
                copies[label].append(
                    redundancy_report(net.graph, result).mean_copies
                )
        rows.append((
            n, d,
            {k: float(np.mean(v)) for k, v in stretch.items()},
            {k: float(np.mean(v)) for k, v in copies.items()},
        ))
    return rows


@pytest.mark.benchmark(group="ablation-latency")
def test_latency_and_redundancy(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'stretch fl/st/dy':>22} | "
          f"{'copies/host fl/st/dy':>24}")
    for n, d, stretch, copies in rows:
        print(f"{n:>4} {d:>4g} | "
              f"{stretch['flooding']:>6.2f} {stretch['static']:>6.2f} "
              f"{stretch['dynamic']:>6.2f} | "
              f"{copies['flooding']:>7.1f} {copies['static']:>7.1f} "
              f"{copies['dynamic']:>7.1f}")
        # Flooding is latency-optimal by construction.
        assert stretch["flooding"] == pytest.approx(1.0)
        # The backbones pay a small, bounded latency premium...
        assert stretch["static"] <= 2.0
        assert stretch["dynamic"] <= 2.5
        # ...and buy a large redundancy reduction, biggest when dense.
        assert copies["dynamic"] < copies["flooding"]
        if d >= 18:
            assert copies["dynamic"] < 0.6 * copies["flooding"]
