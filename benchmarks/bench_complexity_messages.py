"""Message- and time-complexity benches (paper, Section 4 analysis).

Checks, with measured message counts from the distributed protocols:

* total construction messages grow **linearly** in n (the message-optimal
  claim) — asserted via the R² of a linear fit over a size sweep;
* construction rounds on random geometric networks stay well below the
  chain worst case;
* the dynamic backbone's construction (no GATEWAY phase) costs fewer
  messages than the static one.
"""

import pytest

from repro.graph.generators import chain_graph, random_geometric_network
from repro.metrics.stats import linear_fit
from repro.protocols.runner import run_distributed_build
from repro.types import CoveragePolicy

NS = (10, 20, 40, 60, 80, 120)


def sweep_messages(policy: CoveragePolicy, include_gateway: bool):
    """Total construction messages for each n in the sweep."""
    out = []
    for n in NS:
        net = random_geometric_network(n, 8.0, rng=1000 + n)
        build = run_distributed_build(
            net.graph, policy, include_gateway_phase=include_gateway
        )
        out.append(build.total_messages)
    return out


@pytest.mark.benchmark(group="complexity")
def test_message_complexity_linear(benchmark):
    msgs = benchmark.pedantic(
        sweep_messages, args=(CoveragePolicy.TWO_FIVE_HOP, True),
        rounds=1, iterations=1,
    )
    slope, intercept, r2 = linear_fit(list(NS), msgs)
    print(f"\nconstruction messages vs n: {dict(zip(NS, msgs))}")
    print(f"linear fit: messages ~ {slope:.2f} n + {intercept:.1f} (R^2={r2:.4f})")
    benchmark.extra_info["messages"] = dict(zip(NS, msgs))
    benchmark.extra_info["slope"] = slope
    benchmark.extra_info["r_squared"] = r2
    assert r2 > 0.98, "construction message count is not linear in n"
    assert slope < 6.0, "more than ~6 messages per node"


@pytest.mark.benchmark(group="complexity")
def test_dynamic_construction_cheaper(benchmark):
    def both():
        static = sweep_messages(CoveragePolicy.TWO_FIVE_HOP, True)
        dynamic = sweep_messages(CoveragePolicy.TWO_FIVE_HOP, False)
        return static, dynamic

    static, dynamic = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nstatic  construction messages: {dict(zip(NS, static))}")
    print(f"dynamic construction messages: {dict(zip(NS, dynamic))}")
    for s, d in zip(static, dynamic):
        assert d < s


@pytest.mark.benchmark(group="complexity")
def test_chain_worst_case_rounds(benchmark):
    """The paper's Θ(n)-round clustering worst case, measured."""

    def chain_rounds():
        out = []
        for n in (20, 40, 80):
            build = run_distributed_build(chain_graph(n))
            out.append((n, build.phases[1].duration))
        return out

    rounds = benchmark.pedantic(chain_rounds, rounds=1, iterations=1)
    print(f"\nchain clustering rounds: {rounds}")
    for n, duration in rounds:
        assert n / 2 - 1 <= duration <= n + 2

    # Random geometric networks finish far faster than the worst case.
    net = random_geometric_network(80, 8.0, rng=42)
    build = run_distributed_build(net.graph)
    assert build.phases[1].duration < 40
