"""Ablation: how much each piggyback pruning level saves (SD-CDS).

The paper's dynamic backbone piggybacks the sender's coverage set and
forward set (``BASIC``) plus the relay-neighbour information (``FULL``, the
``N(r)`` rule).  This bench isolates each level's contribution to the
forward-node count.
"""

import pytest

from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.types import CoveragePolicy, PruningLevel

SCENARIOS = [(60, 6.0), (60, 18.0), (100, 18.0)]


def measure():
    rows = []
    for n, d in SCENARIOS:
        counts = {level: [] for level in PruningLevel}
        for seed in range(10):
            net = random_geometric_network(n, d, rng=seed * 77 + n)
            cs = lowest_id_clustering(net.graph)
            source = net.graph.nodes()[seed % n]
            for level in PruningLevel:
                dyn = broadcast_sd(cs, source,
                                   policy=CoveragePolicy.TWO_FIVE_HOP,
                                   pruning=level)
                assert dyn.result.delivered_to_all(net.graph)
                counts[level].append(dyn.result.num_forward_nodes)
        rows.append((n, d, counts))
    return rows


@pytest.mark.benchmark(group="ablation-pruning")
def test_pruning_level_ablation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'none':>7} {'basic':>7} {'full':>7}")
    for n, d, counts in rows:
        mean = {lvl: sum(v) / len(v) for lvl, v in counts.items()}
        print(f"{n:>4} {d:>4g} | {mean[PruningLevel.NONE]:>7.2f} "
              f"{mean[PruningLevel.BASIC]:>7.2f} "
              f"{mean[PruningLevel.FULL]:>7.2f}")
        # Each added level of history can only help on average.
        assert mean[PruningLevel.FULL] <= mean[PruningLevel.BASIC] + 0.25
        assert mean[PruningLevel.BASIC] <= mean[PruningLevel.NONE] + 0.25
        # In dense networks the pruning must show a real win.
        if d >= 18:
            assert mean[PruningLevel.FULL] < mean[PruningLevel.NONE]
