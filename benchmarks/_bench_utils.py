"""Helpers shared by the benchmark modules.

Lives in its own module (not conftest.py) so that `import` works even when
tests/ and benchmarks/ are collected in the same pytest invocation.
"""

from __future__ import annotations


def record_tables(benchmark, tables) -> None:
    """Print each table and stash its records in the benchmark metadata."""
    records = []
    for _d, table in sorted(tables.items()):
        print()
        print(table.render(ci=False))
        records.extend(table.to_records())
    benchmark.extra_info["series"] = records
