"""Ablation: the broadcast-storm baseline and a non-cluster SD-CDS.

Places the paper's backbones between blind flooding (the storm the backbone
exists to prevent) and dominant pruning (a classic neighbour-knowledge
SD-CDS, our extension baseline).
"""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.dominant_pruning import broadcast_dominant_pruning
from repro.broadcast.flooding import blind_flooding
from repro.broadcast.sd_cds import broadcast_sd
from repro.broadcast.si_cds import broadcast_si
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network

SCENARIOS = [(60, 6.0), (60, 18.0)]


def measure():
    rows = []
    for n, d in SCENARIOS:
        sums = {"flooding": 0.0, "static": 0.0, "dynamic": 0.0, "dp": 0.0}
        trials = 10
        for seed in range(trials):
            net = random_geometric_network(n, d, rng=seed * 13 + n)
            cs = lowest_id_clustering(net.graph)
            source = net.graph.nodes()[seed % n]
            static = build_static_backbone(cs)
            sums["flooding"] += blind_flooding(net.graph, source).num_forward_nodes
            sums["static"] += broadcast_si(net.graph, static, source).num_forward_nodes
            sums["dynamic"] += broadcast_sd(cs, source).result.num_forward_nodes
            sums["dp"] += broadcast_dominant_pruning(net.graph, source).num_forward_nodes
        rows.append((n, d, {k: v / trials for k, v in sums.items()}))
    return rows


@pytest.mark.benchmark(group="ablation-flooding")
def test_flooding_comparison(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'flooding':>9} {'static':>8} "
          f"{'dynamic':>8} {'dom-prune':>10}")
    for n, d, mean in rows:
        print(f"{n:>4} {d:>4g} | {mean['flooding']:>9.1f} "
              f"{mean['static']:>8.1f} {mean['dynamic']:>8.1f} "
              f"{mean['dp']:>10.1f}")
        assert mean["flooding"] == pytest.approx(n)  # everyone forwards
        assert mean["dynamic"] <= mean["static"] + 0.25
        assert mean["static"] < mean["flooding"]
        # Dense networks: backbones remove most of the storm.
        if d >= 18:
            assert mean["dynamic"] < 0.5 * mean["flooding"]
