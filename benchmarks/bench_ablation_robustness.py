"""Ablation (extension): delivery under a lossy data plane.

The paper assumes a perfect MAC; this bench measures what each scheme's
redundancy buys when deliveries are dropped anyway.  Expected shape:
flooding (maximal redundancy) degrades most gracefully; the lean dynamic
backbone loses delivery fastest; the static backbone sits between or below
depending on how many redundant CDS paths survive.
"""

import pytest

from repro.workload.robustness import run_robustness_sweep

LOSSES = (0.0, 0.1, 0.2, 0.3)


@pytest.mark.benchmark(group="ablation-robustness")
def test_delivery_under_loss(benchmark):
    points = benchmark.pedantic(
        run_robustness_sweep,
        kwargs=dict(losses=LOSSES, n=50, average_degree=10.0, trials=12,
                    rng=2003),
        rounds=1, iterations=1,
    )
    print()
    print(f"{'loss':>6} | {'flooding':>9} {'static':>8} {'dynamic':>8}")
    for p in points:
        print(f"{p.loss_probability:>6g} | {p.delivery['flooding']:>9.3f} "
              f"{p.delivery['static']:>8.3f} {p.delivery['dynamic']:>8.3f}")
    ideal, worst = points[0], points[-1]
    for proto in ("flooding", "static", "dynamic"):
        assert ideal.delivery[proto] == pytest.approx(1.0)
        assert worst.delivery[proto] <= ideal.delivery[proto]
    # Redundancy protects: flooding >= backbones at the worst loss point.
    assert worst.delivery["flooding"] >= worst.delivery["static"] - 1e-9
    assert worst.delivery["flooding"] >= worst.delivery["dynamic"] - 0.05
    # And the backbones pay *something* for their efficiency.
    assert min(worst.delivery["static"], worst.delivery["dynamic"]) < 1.0


@pytest.mark.benchmark(group="ablation-robustness")
def test_reliable_tree_under_loss(benchmark):
    """The Pagani–Rossi-style ARQ tree: delivery bought with retransmissions."""
    import numpy as np

    from repro.broadcast.reliable import broadcast_reliable_tree
    from repro.cluster.lowest_id import lowest_id_clustering
    from repro.graph.generators import random_geometric_network

    def measure():
        rng = np.random.default_rng(11)
        rows = []
        for loss in LOSSES:
            delivery, data, overhead = [], [], []
            for _ in range(10):
                net = random_geometric_network(50, 10.0, rng=rng)
                cs = lowest_id_clustering(net.graph)
                rb = broadcast_reliable_tree(
                    cs, 0, loss_probability=loss, rng=rng
                )
                delivery.append(len(rb.result.received) / 50.0)
                data.append(rb.data_transmissions)
                overhead.append(rb.overhead_factor)
            rows.append((loss, float(np.mean(delivery)),
                         float(np.mean(data)), float(np.mean(overhead))))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'loss':>6} | {'delivery':>9} {'data tx':>8} {'tx/fwd':>7}")
    for loss, delivery, data, overhead in rows:
        print(f"{loss:>6g} | {delivery:>9.3f} {data:>8.1f} {overhead:>7.2f}")
    # Reliability holds at every loss level the sweep uses...
    for _loss, delivery, _data, _overhead in rows:
        assert delivery == pytest.approx(1.0)
    # ...and its price is monotone in the loss rate.
    datas = [r[2] for r in rows]
    assert datas == sorted(datas)
