"""Ablation (extension): unicast route stretch over the backbone.

If the cluster backbone is to serve as general infrastructure (the CBRP
use case the paper's related work describes), unicast routes confined to
it must not detour much.  This bench measures route stretch against true
shortest paths across densities.
"""

import pytest

from repro.routing.stretch import route_stretch_study

SCENARIOS = [(60, 6.0), (60, 12.0), (60, 18.0)]


@pytest.mark.benchmark(group="ablation-routing")
def test_route_stretch(benchmark):
    def measure():
        return [
            (d, route_stretch_study(
                n=n, average_degree=d, networks=6, pairs_per_network=15,
                rng=int(d * 100),
            ))
            for n, d in SCENARIOS
        ]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'d':>4} | {'mean stretch':>13} {'max stretch':>12} "
          f"{'backbone frac':>14}")
    for d, report in rows:
        print(f"{d:>4g} | {report.mean_stretch:>13.2f} "
              f"{report.max_stretch:>12.2f} "
              f"{report.mean_backbone_fraction:>14.2f}")
        # Routes ride the backbone exclusively...
        assert report.mean_backbone_fraction == 1.0
        # ...at a small detour cost.
        assert report.mean_stretch < 1.7
        assert report.max_stretch < 4.0
