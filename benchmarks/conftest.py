"""Shared benchmark configuration.

Benchmarks regenerate the paper's figures.  Fidelity is controlled by the
``REPRO_BENCH_FIDELITY`` environment variable:

* ``quick`` (default) — a fixed 12 paired trials per point: seconds per
  figure, shapes stable, absolute numbers slightly noisy;
* ``paper`` — the paper's stopping rule (99% CI within ±5%): minutes per
  figure, numbers publication-grade.

Each figure bench prints its series tables (run pytest with ``-s`` to see
them) and records the series in ``benchmark.extra_info`` so they land in the
JSON output of ``pytest-benchmark``.
"""

from __future__ import annotations

import os

import pytest

from repro.workload.config import PaperEnvironment


def bench_environment() -> PaperEnvironment:
    """The environment selected by ``REPRO_BENCH_FIDELITY``."""
    fidelity = os.environ.get("REPRO_BENCH_FIDELITY", "quick").lower()
    if fidelity == "paper":
        return PaperEnvironment.paper()
    if fidelity == "quick":
        return PaperEnvironment.quick()
    raise ValueError(
        f"REPRO_BENCH_FIDELITY must be 'quick' or 'paper', got {fidelity!r}"
    )


@pytest.fixture(scope="session")
def env() -> PaperEnvironment:
    """Session-wide experiment environment."""
    return bench_environment()
