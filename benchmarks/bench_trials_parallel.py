"""Process-parallel paired trials: speedup, bit-identity and the trajectory.

Benches the fig6 ``d=6`` sweep (the acceptance scenario of the ``repro.exec``
subsystem) serial vs the process backend:

* asserts the **bit-identity contract** — the serial and process estimates
  must be exactly equal, whatever the worker count;
* measures the **speedup** and gates it: the local requirement scales with
  the visible cores (``min(3.0, max(0.5, 0.45 * cores))`` — 3x on an
  8-core runner, overhead-tolerant on starved 1-core containers);
* appends the measurement to the persisted ``BENCH_trials.json``
  **trajectory** and fails if the speedup regressed to below 70% of the
  previous comparable point (same scenario, same core count).

Runs standalone (the CI perf-smoke job and ``make bench-parallel``)::

    PYTHONPATH=src python benchmarks/bench_trials_parallel.py --quick
    PYTHONPATH=src python benchmarks/bench_trials_parallel.py --json

It is also collected by pytest (``bench_*.py``): the equivalence test below
asserts serial == process on a small sweep; timing stays out of the suite.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.exec.backends import ProcessBackend
from repro.exec.scenarios import get_scenario_cache
from repro.io.results import append_perf_point, load_perf_trajectory
from repro.workload.config import PaperEnvironment
from repro.workload.experiments import run_fig6

#: Default trajectory location (committed at the repo root).
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: The bench scenario: the paper's fig6 sweep restricted to d=6 (the sparse
#: sub-figure, where connectivity rejection makes trials expensive).
SWEEP = {"degrees": (6.0,), "ns": (20, 40, 60, 80, 100)}
QUICK = {"degrees": (6.0,), "ns": (20, 40)}

#: Regression gate: the fresh speedup must reach this fraction of the
#: previous comparable trajectory point.
REGRESSION_FLOOR = 0.7


def required_speedup(cores: int) -> float:
    """The core-aware local speedup gate.

    A 3x speedup is physically impossible on a 1-core container, so the
    requirement scales with the cores the runner actually has, saturating
    at the acceptance criterion's 3x (reached from 7 cores up) and
    bottoming out at 0.5x (process-pool overhead must not be
    catastrophic).
    """
    return min(3.0, max(0.5, 0.45 * cores))


def _sweep_env(*, quick: bool, trials: int, seed: int) -> PaperEnvironment:
    shape = QUICK if quick else SWEEP
    # A fixed trial count (min == max) keeps the two timed runs doing
    # identical work and the trajectory comparable run-over-run.
    return PaperEnvironment(
        ns=shape["ns"], degrees=shape["degrees"],
        min_samples=trials, max_samples=trials, seed=seed,
    )


def _timed_run(env: PaperEnvironment, *, backend, parallel: int):
    """One cold run: cleared scenario cache, fresh pool, records flattened."""
    get_scenario_cache().clear()  # cold cache for a fair comparison
    t0 = time.perf_counter()
    tables = run_fig6(env, backend=backend, parallel=parallel)
    elapsed = time.perf_counter() - t0
    records = [rec for _d, table in sorted(tables.items())
               for rec in table.to_records()]
    return records, elapsed


def run_bench(*, quick: bool, trials: int, workers: int, seed: int) -> dict:
    """Serial vs process on the same sweep; assert identity, measure speedup."""
    env = _sweep_env(quick=quick, trials=trials, seed=seed)
    serial_records, serial_seconds = _timed_run(env, backend="serial",
                                                parallel=1)
    # A dedicated pool, created after the cache clear: the forked workers
    # must not inherit a warm parent cache, and pool startup is honestly
    # part of the measured time.
    pool = ProcessBackend(workers)
    try:
        process_records, process_seconds = _timed_run(
            env, backend=pool, parallel=workers
        )
        half = ProcessBackend(max(1, workers // 2))
        try:
            half_records, _ = _timed_run(env, backend=half,
                                         parallel=max(1, workers // 2))
        finally:
            half.close()
    finally:
        pool.close()
    assert process_records == serial_records, (
        "process-backend estimates diverged from serial — the determinism "
        "contract is broken"
    )
    assert half_records == process_records, (
        f"estimates changed between {workers} and {max(1, workers // 2)} "
        f"workers — wave partitioning leaked into the fold"
    )
    cores = os.cpu_count() or 1
    return {
        "quick": quick,
        "label": f"fig6-d6-{'quick' if quick else 'paper'}-trials{trials}"
                 f"-workers{workers}",
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "cores": cores,
        "workers": workers,
        "trials_per_point": trials,
        "points": len(serial_records),
        "seed": seed,
        "serial_seconds": round(serial_seconds, 3),
        "process_seconds": round(process_seconds, 3),
        "speedup": round(serial_seconds / process_seconds, 3),
        "bit_identical": True,
    }


def check_speedup_gates(summary: dict, bench_file: Path) -> None:
    """The acceptance criteria, shared by the CLI gate and CI.

    The absolute core-aware gate applies to the full bench only: the
    ``--quick`` sweep is deliberately too small to amortise pool startup
    and gates on bit-identity plus the trajectory regression floor.
    """
    if not summary.get("quick"):
        required = required_speedup(summary["cores"])
        assert summary["speedup"] >= required, (
            f"process x{summary['workers']} speedup {summary['speedup']:.2f} "
            f"below the {required:.2f} required on {summary['cores']} core(s)"
        )
    previous = None
    for rec in reversed(load_perf_trajectory(bench_file)):
        if (rec.get("label") == summary["label"]
                and rec.get("cores") == summary["cores"]):
            previous = rec
            break
    if previous is not None:
        floor = REGRESSION_FLOOR * float(previous["speedup"])
        assert summary["speedup"] >= floor, (
            f"speedup regressed: {summary['speedup']:.2f} < {floor:.2f} "
            f"(70% of the previous comparable point "
            f"{previous['speedup']:.2f} from {previous.get('timestamp')})"
        )


def test_process_backend_matches_serial():
    """Pytest hook: the bit-identity contract on a small sweep (no timing)."""
    summary = run_bench(quick=True, trials=4, workers=2, seed=0)
    assert summary["bit_identical"]


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke (seconds)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--trials", type=int, default=None,
                        help="paired trials per point (default 30; 8 with "
                             "--quick)")
    parser.add_argument("--workers", type=int, default=8,
                        help="process-pool worker count (default 8)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE,
                        help="trajectory JSON to compare against and append "
                             "to")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and gate but do not append to the "
                             "trajectory")
    args = parser.parse_args(argv)

    trials = args.trials if args.trials is not None else (
        8 if args.quick else 30)
    summary = run_bench(quick=args.quick, trials=trials,
                        workers=args.workers, seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"paired-trials parallel bench: {summary['label']} "
              f"({summary['points']} records, {summary['cores']} cores)")
        print(f"  serial        {summary['serial_seconds']:>8.3f}s")
        print(f"  process x{summary['workers']:<3} {summary['process_seconds']:>8.3f}s")
        print(f"  speedup       {summary['speedup']:>8.2f}x "
              f"(required {required_speedup(summary['cores']):.2f}x)")
        print("  estimates bit-identical across backends and worker counts")
    try:
        check_speedup_gates(summary, args.bench_file)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    if not args.no_record:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    print(f"OK: speedup {summary['speedup']:.2f}x on "
          f"{summary['cores']} core(s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
