"""Serve-daemon warm-pool throughput: the ``serve-warm-n100`` trajectory.

Measures what the daemon exists to make fast: many small experiment
requests answered by **one long-lived service** whose process pool and
scenario cache stay warm across requests, instead of paying
interpreter + pool + cache startup per run.  The scenario is a batch of
fig6-style single-point sweeps at ``n=100`` submitted back-to-back
through a warm :class:`~repro.serve.service.ServeService`:

* asserts the **determinism contract** — every served answer must equal
  the serial one-shot oracle for its parameters;
* measures batch throughput (requests/s and trials/s) and the warm-up
  ratio (first request, which pays pool startup, vs the rest);
* appends the measurement to the persisted ``BENCH_trials.json``
  trajectory and fails if throughput regressed to below 70% of the
  previous comparable point (same label, same core count).

Runs standalone (CI ``serve-chaos`` lane and ``make serve-chaos``)::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --json

It is also collected by pytest (``bench_*.py``): the hook below asserts
the served-equals-oracle contract on a tiny request; timing stays out of
the default suite.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.io.results import append_perf_point, load_perf_trajectory
from repro.serve.service import ServeService
from repro.workload.serve_adapters import RunContext, get_adapter

#: Default trajectory location (committed at the repo root).
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: Regression gate: fresh throughput must reach this fraction of the
#: previous comparable trajectory point.
REGRESSION_FLOOR = 0.7

#: The per-request experiment: one fig6 point at n=100 (d=6, the sparse
#: regime where scenario construction dominates and the warm cache pays).
def _request_params(*, trials: int, seed: int) -> dict:
    return {"ns": [100], "degrees": [6.0], "trials": trials, "seed": seed}


def _oracle(params: dict) -> str:
    adapter = get_adapter("fig6")
    result = adapter.run(adapter.validate(params),
                         RunContext(backend="serial", parallel=1))
    return json.dumps(result, sort_keys=True)


def run_bench(*, quick: bool, requests: int, trials: int, workers: int,
              seed: int) -> dict:
    """One warm service, ``requests`` sequential submits, all verified."""
    per_request = []
    with tempfile.TemporaryDirectory() as tmp:
        service = ServeService(Path(tmp) / "state", backend="process",
                               workers=workers, queue_limit=requests + 2,
                               watermark=requests + 2)
        service.start()
        try:
            t_batch = time.perf_counter()
            for i in range(requests):
                params = _request_params(trials=trials, seed=seed + i)
                t0 = time.perf_counter()
                req = service.submit({"op": "submit", "experiment": "fig6",
                                      "params": params,
                                      "id": f"bench-{i}"})
                assert req.wait_terminal(600), f"request {i} never finished"
                per_request.append(time.perf_counter() - t0)
                assert req.state == "done", (req.state, req.error)
                served = json.dumps(req.result, sort_keys=True)
                assert served == _oracle(params), (
                    f"served answer for request {i} diverged from the "
                    f"serial oracle — the determinism contract is broken"
                )
            batch_seconds = time.perf_counter() - t_batch
        finally:
            service.stop()
    total_trials = requests * trials
    warm = per_request[1:] or per_request
    cores = os.cpu_count() or 1
    return {
        "quick": quick,
        "label": "serve-warm-n100",
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "cores": cores,
        "workers": workers,
        "requests": requests,
        "trials_per_request": trials,
        "seed": seed,
        "batch_seconds": round(batch_seconds, 3),
        "first_request_seconds": round(per_request[0], 3),
        "warm_request_seconds": round(sum(warm) / len(warm), 3),
        "requests_per_sec": round(requests / batch_seconds, 3),
        "trials_per_sec": round(total_trials / batch_seconds, 3),
        "oracle_identical": True,
    }


def check_gates(summary: dict, bench_file: Path) -> None:
    """The 0.7x trajectory floor against the last comparable point."""
    previous = None
    for rec in reversed(load_perf_trajectory(bench_file)):
        if (rec.get("label") == summary["label"]
                and rec.get("cores") == summary["cores"]
                and rec.get("quick") == summary["quick"]):
            previous = rec
            break
    if previous is not None:
        floor = REGRESSION_FLOOR * float(previous["trials_per_sec"])
        assert summary["trials_per_sec"] >= floor, (
            f"serve throughput regressed: {summary['trials_per_sec']:.2f} "
            f"trials/s < {floor:.2f} (70% of the previous comparable "
            f"point {previous['trials_per_sec']:.2f} from "
            f"{previous.get('timestamp')})"
        )


def test_served_answers_match_the_oracle():
    """Pytest hook: warm-service answers equal the serial oracle."""
    summary = run_bench(quick=True, requests=2, trials=2, workers=2, seed=0)
    assert summary["oracle_identical"]


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small batch for CI smoke (seconds)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests in the batch (default 8; 3 with "
                             "--quick)")
    parser.add_argument("--trials", type=int, default=None,
                        help="paired trials per request (default 6; 3 with "
                             "--quick)")
    parser.add_argument("--workers", type=int, default=4,
                        help="warm process-pool worker count (default 4)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE,
                        help="trajectory JSON to compare against and append "
                             "to")
    parser.add_argument("--no-record", action="store_true",
                        help="measure and gate but do not append to the "
                             "trajectory")
    args = parser.parse_args(argv)

    requests = args.requests if args.requests is not None else (
        3 if args.quick else 8)
    trials = args.trials if args.trials is not None else (
        3 if args.quick else 6)
    summary = run_bench(quick=args.quick, requests=requests, trials=trials,
                        workers=args.workers, seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"serve warm-pool bench: {summary['label']} "
              f"({requests} requests x {trials} trials, "
              f"{summary['cores']} cores)")
        print(f"  batch         {summary['batch_seconds']:>8.3f}s")
        print(f"  first request {summary['first_request_seconds']:>8.3f}s "
              f"(pays pool startup)")
        print(f"  warm request  {summary['warm_request_seconds']:>8.3f}s")
        print(f"  throughput    {summary['requests_per_sec']:>8.2f} req/s "
              f"({summary['trials_per_sec']:.1f} trials/s)")
        print("  every served answer equals the serial oracle")
    try:
        check_gates(summary, args.bench_file)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    if not args.no_record:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    print(f"OK: {summary['trials_per_sec']:.1f} trials/s warm")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
