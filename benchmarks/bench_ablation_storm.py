"""Ablation (extension): the broadcast storm, actually simulated.

The paper motivates backbones with the broadcast-storm problem but then
assumes the MAC away.  This bench puts collisions back (same-slot arrivals
at a host destroy each other; relays use a small random back-off) and
sweeps density.  Expected shape: flooding's channel damage (collision
count) grows steeply with density while the dynamic backbone's stays
roughly flat — the storm, and its cure, measured end to end on the
simulator's message level.
"""

import pytest

from repro.workload.storm import run_storm_experiment

DEGREES = (6.0, 12.0, 18.0, 24.0)


@pytest.mark.benchmark(group="ablation-storm")
def test_broadcast_storm(benchmark):
    points = benchmark.pedantic(
        run_storm_experiment,
        kwargs=dict(degrees=DEGREES, n=50, trials=10, jitter_slots=4,
                    rng=2003),
        rounds=1, iterations=1,
    )
    print()
    print(f"{'d':>4} | {'delivery fl/st/dy':>20} | "
          f"{'collisions fl/st/dy':>22}")
    for p in points:
        print(f"{p.average_degree:>4g} | "
              f"{p.delivery['flooding']:>6.2f} {p.delivery['static']:>6.2f} "
              f"{p.delivery['dynamic']:>6.2f} | "
              f"{p.collisions['flooding']:>7.1f} "
              f"{p.collisions['static']:>7.1f} "
              f"{p.collisions['dynamic']:>7.1f}")
    benchmark.extra_info["points"] = [
        {"d": p.average_degree, **{f"delivery_{k}": v
                                   for k, v in p.delivery.items()},
         **{f"collisions_{k}": v for k, v in p.collisions.items()}}
        for p in points
    ]
    first, last = points[0], points[-1]
    # The storm: flooding's collision damage explodes with density...
    assert last.collisions["flooding"] > 4 * first.collisions["flooding"]
    # ...while the dynamic backbone keeps the channel almost quiet.
    for p in points:
        assert p.collisions["dynamic"] < 0.25 * p.collisions["flooding"]
        # And everyone still mostly delivers thanks to the back-off (the
        # floor leaves headroom for sampling noise at trials=10; the lean
        # dynamic backbone at d=6 sits near 0.85).
        for proto in ("flooding", "static", "dynamic"):
            assert p.delivery[proto] > 0.8
