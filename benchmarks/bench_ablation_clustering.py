"""Ablation (extension): clusterhead electorate — lowest-ID vs highest-degree.

The backbone construction only needs *some* independent dominating head set;
the paper uses lowest-ID.  Highest-degree election produces fewer, larger
clusters in dense networks — this bench measures how that propagates to
backbone size and dynamic forward counts, plus the incremental-repair
locality of the lowest-ID structure under link churn.
"""

import numpy as np
import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.highest_degree import highest_degree_clustering
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.maintenance.incremental import IncrementalLowestIdClustering

SCENARIOS = [(60, 6.0), (60, 18.0)]


def measure():
    rng = np.random.default_rng(31)
    rows = []
    for n, d in SCENARIOS:
        data = {"low-id": {"heads": [], "cds": [], "dyn": []},
                "high-deg": {"heads": [], "cds": [], "dyn": []}}
        for seed in range(10):
            net = random_geometric_network(n, d, rng=rng)
            source = int(rng.choice(net.graph.nodes()))
            for label, cluster_fn in (("low-id", lowest_id_clustering),
                                      ("high-deg", highest_degree_clustering)):
                cs = cluster_fn(net.graph)
                data[label]["heads"].append(cs.num_clusters)
                data[label]["cds"].append(build_static_backbone(cs).size)
                dyn = broadcast_sd(cs, source)
                assert dyn.result.delivered_to_all(net.graph)
                data[label]["dyn"].append(dyn.result.num_forward_nodes)
        rows.append((n, d, {
            label: {k: float(np.mean(v)) for k, v in metrics.items()}
            for label, metrics in data.items()
        }))
    return rows


@pytest.mark.benchmark(group="ablation-clustering")
def test_clustering_electorate(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'heads lo/hi':>12} | "
          f"{'CDS lo/hi':>12} | {'dyn lo/hi':>12}")
    for n, d, data in rows:
        lo, hi = data["low-id"], data["high-deg"]
        print(f"{n:>4} {d:>4g} | {lo['heads']:>5.1f}/{hi['heads']:<6.1f} | "
              f"{lo['cds']:>5.1f}/{hi['cds']:<6.1f} | "
              f"{lo['dyn']:>5.1f}/{hi['dyn']:<6.1f}")
        # Highest-degree needs no more clusters than lowest-ID on average,
        # and (measured finding) its backbone is consistently *smaller* —
        # up to ~28% at d=18 — at the price of far worse head stability
        # under mobility (degrees change every tick, ids never do).
        assert hi["heads"] <= lo["heads"] + 0.5
        assert hi["cds"] <= lo["cds"] + 0.5
        assert hi["cds"] >= 0.5 * lo["cds"]


@pytest.mark.benchmark(group="ablation-clustering")
def test_incremental_repair_locality(benchmark):
    """Locality of lowest-ID repair: mean nodes touched per link event."""

    def measure_locality():
        net = random_geometric_network(100, 10.0, rng=17)
        inc = IncrementalLowestIdClustering(net.graph)
        rng = np.random.default_rng(18)
        nodes = net.graph.nodes()
        touched = []
        for _ in range(200):
            u, v = (int(x) for x in rng.choice(nodes, 2, replace=False))
            if inc.graph.has_edge(u, v):
                s = inc.remove_edge(u, v)
            else:
                s = inc.add_edge(u, v)
            touched.append(s.touched)
        return touched

    touched = benchmark.pedantic(measure_locality, rounds=1, iterations=1)
    mean = float(np.mean(touched))
    print(f"\nincremental repair: mean {mean:.2f} nodes touched per link "
          f"event (n=100), max {max(touched)}")
    assert mean < 10.0  # repairs are local, not global
