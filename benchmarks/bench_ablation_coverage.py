"""Ablation: 2.5-hop vs 3-hop coverage sets.

The paper's closing argument: "the algorithm with the 2.5-hop coverage set
has comparable performance to the one with the 3-hop coverage set while it
reduces maintenance cost."  This bench quantifies both halves:

* backbone sizes under the two policies (comparable — within a few %);
* maintenance cost — coverage-set state and CH_HOP2 message volume (the
  3-hop exchange carries strictly more entries).
"""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.graph.generators import random_geometric_network
from repro.protocols.runner import run_distributed_build
from repro.types import CoveragePolicy

SCENARIOS = [(40, 6.0), (80, 6.0), (40, 18.0), (80, 18.0)]


def measure():
    rows = []
    for n, d in SCENARIOS:
        sizes = {p: [] for p in CoveragePolicy}
        state = {p: [] for p in CoveragePolicy}
        volume = {p: [] for p in CoveragePolicy}
        for seed in range(8):
            net = random_geometric_network(n, d, rng=seed * 1000 + n)
            cs = lowest_id_clustering(net.graph)
            for policy in CoveragePolicy:
                covs = compute_all_coverage_sets(cs, policy)
                sizes[policy].append(
                    build_static_backbone(cs, policy, covs).size
                )
                state[policy].append(
                    sum(c.maintenance_cost() for c in covs.values())
                )
                build = run_distributed_build(net.graph, policy,
                                              include_gateway_phase=False)
                volume[policy].append(build.total_volume)
        rows.append((n, d, sizes, state, volume))
    return rows


@pytest.mark.benchmark(group="ablation-coverage")
def test_coverage_policy_ablation(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'size 2.5':>9} {'size 3':>9} | "
          f"{'state 2.5':>9} {'state 3':>9} | {'vol 2.5':>9} {'vol 3':>9}")
    for n, d, sizes, state, volume in rows:
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        s25 = mean(sizes[CoveragePolicy.TWO_FIVE_HOP])
        s3 = mean(sizes[CoveragePolicy.THREE_HOP])
        st25 = mean(state[CoveragePolicy.TWO_FIVE_HOP])
        st3 = mean(state[CoveragePolicy.THREE_HOP])
        v25 = mean(volume[CoveragePolicy.TWO_FIVE_HOP])
        v3 = mean(volume[CoveragePolicy.THREE_HOP])
        print(f"{n:>4} {d:>4g} | {s25:>9.2f} {s3:>9.2f} | "
              f"{st25:>9.1f} {st3:>9.1f} | {v25:>9.1f} {v3:>9.1f}")
        # Comparable backbone sizes (paper: <2%; allow 10% at 8 samples).
        assert s25 == pytest.approx(s3, rel=0.10)
        # Strictly cheaper maintenance for 2.5-hop.
        assert st25 <= st3
        assert v25 <= v3
