"""Exec-layer chaos bench: supervised runs under injected faults.

Exercises the whole resilience stack end to end and gates on the only
metric that matters — **the estimates must not change**:

* ``transient``  — an injected exception mid-wave, retried by
  :class:`~repro.exec.supervise.SupervisedBackend`;
* ``timeout``    — a trial sleeping past the chunk deadline, timed out,
  the pool abandoned and the chunk re-run;
* ``crash``      — a worker SIGKILLing itself inside a process pool, the
  broken pool rebuilt;
* ``kill-resume`` — a journaled subprocess run SIGKILLed mid-stream and
  resumed from its journal (the ``tests/chaos_exec.py`` driver).

Every scenario's estimates are compared against an undisturbed serial
reference; any divergence is a determinism-contract break and fails the
bench.  Timing is reported for visibility but deliberately not gated —
chaos recovery time is dominated by injected sleeps and pool rebuilds.

Runs standalone (CI ``chaos-smoke`` and ``make chaos``)::

    PYTHONPATH=src python benchmarks/bench_chaos_exec.py --quick
    PYTHONPATH=src python benchmarks/bench_chaos_exec.py --json

It is also collected by pytest (``bench_*.py``): the hook below asserts
the transient-retry scenario on the serial backend, which is fast enough
for the default suite; the subprocess scenarios stay in the chaos lane.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

_TESTS_DIR = Path(__file__).resolve().parent.parent / "tests"
if str(_TESTS_DIR) not in sys.path:
    sys.path.insert(0, str(_TESTS_DIR))  # the chaos_exec helpers/driver

from repro.exec.spec import TrialSpec
from repro.exec.supervise import SupervisedBackend
from repro.workload.trials import paired_trials

DRIVER = _TESTS_DIR / "chaos_exec.py"


def _chaos_spec(marker_dir: str, **kwargs) -> TrialSpec:
    return TrialSpec.create("chaos_exec:make_chaos_trial",
                            marker_dir=marker_dir, **kwargs)


def _reference(tmp: str, *, trials: int, seed: int):
    ref_dir = os.path.join(tmp, "reference")
    os.makedirs(ref_dir)
    return paired_trials(
        spec=_chaos_spec(ref_dir), min_samples=trials, max_samples=trials,
        rng=seed, backend="serial",
    )


def _supervised_scenario(tmp: str, name: str, *, trials: int, seed: int,
                         inner, workers: int, injection: dict,
                         chunk_timeout=None, parallel: int = 1) -> dict:
    """One supervised run under injection; compare against the reference."""
    reference = _reference(os.path.join(tmp, name), trials=trials, seed=seed)
    chaos_dir = os.path.join(tmp, name, "chaos")
    os.makedirs(chaos_dir)
    sup = SupervisedBackend(inner, workers=workers, retries=3,
                            chunk_timeout=chunk_timeout, backoff_base=0.01)
    t0 = time.perf_counter()
    try:
        outcome = paired_trials(
            spec=_chaos_spec(chaos_dir, **injection),
            min_samples=trials, max_samples=trials, rng=seed,
            backend=sup, parallel=parallel,
        )
    finally:
        sup.close()
    elapsed = time.perf_counter() - t0
    identical = (outcome.estimates == reference.estimates
                 and outcome.trials == reference.trials)
    return {
        "scenario": name,
        "backend": inner,
        "trials": trials,
        "seconds": round(elapsed, 3),
        "events": dict(sup.event_summary()),
        "final_backend": sup.inner.name,
        "bit_identical": identical,
    }


def _kill_resume_scenario(tmp: str, *, trials: int, seed: int,
                          crash_index: int) -> dict:
    """SIGKILL a journaled driver subprocess mid-run, resume, compare."""
    work = os.path.join(tmp, "kill-resume")
    markers = os.path.join(work, "markers")
    os.makedirs(markers)
    journal = os.path.join(work, "run.jsonl")
    ref_out = os.path.join(work, "reference.json")
    res_out = os.path.join(work, "resumed.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(Path(__file__).resolve().parent.parent / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    def drive(*extra, check=True):
        proc = subprocess.run(
            [sys.executable, str(DRIVER), "--journal", journal,
             "--marker-dir", markers, "--trials", str(trials),
             "--seed", str(seed), *extra],
            env=env, capture_output=True, text=True, timeout=120,
        )
        if check and proc.returncode != 0:
            raise RuntimeError(f"chaos driver failed: {proc.stderr}")
        return proc

    drive("--no-journal", "--out", ref_out)
    t0 = time.perf_counter()
    first = drive("--crash-index", str(crash_index), check=False)
    if first.returncode != -signal.SIGKILL:
        raise RuntimeError(
            f"expected the run to die by SIGKILL, got {first.returncode}"
        )
    journaled = len(Path(journal).read_text().splitlines()) - 1
    drive("--crash-index", str(crash_index), "--resume", "--out", res_out)
    elapsed = time.perf_counter() - t0
    identical = (Path(res_out).read_bytes() == Path(ref_out).read_bytes())
    return {
        "scenario": "kill-resume",
        "backend": "serial",
        "trials": trials,
        "seconds": round(elapsed, 3),
        "events": {"sigkill": 1, "journaled_before_kill": journaled},
        "final_backend": "serial",
        "bit_identical": identical,
    }


def run_bench(*, quick: bool, seed: int) -> dict:
    """All chaos scenarios; returns the summary document."""
    trials = 8 if quick else 24
    scenarios = []
    with tempfile.TemporaryDirectory(prefix="chaos-bench-") as tmp:
        scenarios.append(_supervised_scenario(
            tmp, "transient-retry", trials=trials, seed=seed,
            inner="serial", workers=1, injection={"raise_indices": (2,)},
        ))
        scenarios.append(_supervised_scenario(
            tmp, "timeout-retry", trials=trials, seed=seed,
            inner="serial", workers=1, chunk_timeout=0.3,
            injection={"sleep_indices": (1,), "sleep_seconds": 1.5},
        ))
        scenarios.append(_supervised_scenario(
            tmp, "worker-crash", trials=trials, seed=seed,
            inner="process", workers=2, parallel=2,
            injection={"crash_indices": (2,)},
        ))
        scenarios.append(_kill_resume_scenario(
            tmp, trials=max(trials, 10), seed=seed,
            crash_index=max(trials, 10) - 2,
        ))
    return {
        "quick": quick,
        "seed": seed,
        "scenarios": scenarios,
        "all_bit_identical": all(s["bit_identical"] for s in scenarios),
    }


def test_supervised_transient_retry_is_bit_identical(tmp_path):
    """Pytest hook: the fast in-process chaos scenario (no subprocesses)."""
    summary = _supervised_scenario(
        str(tmp_path), "hook", trials=6, seed=5,
        inner="serial", workers=1, injection={"raise_indices": (1,)},
    )
    assert summary["bit_identical"]
    assert summary["events"].get("retry", 0) >= 1


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trial counts for CI smoke (seconds)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv)

    summary = run_bench(quick=args.quick, seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"exec chaos bench ({'quick' if summary['quick'] else 'full'})")
        for s in summary["scenarios"]:
            verdict = "ok " if s["bit_identical"] else "DIVERGED"
            events = ", ".join(f"{k}={v}" for k, v in
                               sorted(s["events"].items())) or "none"
            print(f"  {verdict} {s['scenario']:<16} {s['seconds']:>7.3f}s "
                  f"on {s['backend']}->{s['final_backend']}  [{events}]")
    if not summary["all_bit_identical"]:
        print("FAIL: a chaos scenario changed the estimates — the "
              "determinism contract is broken")
        return 1
    print("OK: estimates survived every injected failure unchanged")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
