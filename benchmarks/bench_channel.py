"""Contention bench: the CDS backbone survives interference flooding cannot.

Three gates, shared by pytest collection, the CI ``channel-smoke`` job and
``make bench-channel``:

* **Identity** — a medium carrying an :class:`~repro.channel.model.IdealChannel`
  (no MAC) replays the bare medium bit-for-bit: same trace, same
  receptions, same RNG consumption (the channel seam is free until a real
  model is attached);
* **Gap** — at the paper's n=100 scale under SINR + slotted CSMA, flooding's
  redundant relays raise the interference sum enough to destroy their own
  delivery: the flooding-vs-SI delivery gap must stay open (and SD must
  beat flooding too);
* **Determinism** — the contention sweep is bit-identical across the
  serial/thread/process backends and worker counts.

With ``--gate`` the run additionally fails when sweep throughput drops
below ``0.7x`` the latest committed ``channel-contention`` point in
``BENCH_trials.json``; ``--update`` records a fresh baseline::

    PYTHONPATH=src python benchmarks/bench_channel.py --quick
    PYTHONPATH=src python benchmarks/bench_channel.py --gate
    PYTHONPATH=src python benchmarks/bench_channel.py --update
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.channel import IdealChannel
from repro.exec.scenarios import connected_scenario
from repro.io.results import append_perf_point, latest_perf_point
from repro.protocols.broadcast import DistributedSIBroadcast
from repro.sim.network import SimNetwork
from repro.workload.contention import (
    CONTENTION_PROTOCOLS,
    run_contention_sweep,
)

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: Fail the ``--gate`` run below this fraction of the committed throughput.
REGRESSION_FLOOR = 0.7

#: Minimum delivery-ratio lead of the SI backbone over flooding at n=100.
GAP_FLOOR = 0.02

#: The gated scenario: the paper's densest size, where redundancy hurts most.
SCENARIO = {"n": 100, "average_degree": 8.0}


def check_ideal_identity(*, n: int = 60, seed: int = 3) -> None:
    """Assert the IdealChannel replays the bare medium bit-for-bit."""
    graph = connected_scenario(n, 8.0, root=seed).network.graph

    def flood(channel):
        net = SimNetwork(graph, loss_probability=0.25, rng=seed,
                         channel=channel)
        protocol = DistributedSIBroadcast(net, graph.nodes())
        protocol.start(0)
        net.run_phase()
        return protocol.result(), net.trace.entries

    bare, bare_trace = flood(None)
    ideal, ideal_trace = flood(IdealChannel())
    assert bare_trace == ideal_trace, "IdealChannel changed the trace"
    assert bare.received == ideal.received, "IdealChannel changed receptions"
    assert bare.reception_time == ideal.reception_time, (
        "IdealChannel changed reception times"
    )


def run_bench(*, quick: bool, trials: int, seed: int) -> dict:
    """Run the gated sweep and the identity/determinism checks."""
    check_ideal_identity(seed=seed + 1)

    t0 = time.perf_counter()
    points = run_contention_sweep(
        losses=(0.0,), trials=trials, mac="csma", rng=seed, **SCENARIO,
    )
    elapsed = time.perf_counter() - t0

    backends = [("thread", 4)] if quick else [("thread", 4), ("process", 2)]
    bit_identical = True
    for backend, workers in backends:
        other = run_contention_sweep(
            losses=(0.0,), trials=trials, mac="csma", rng=seed,
            backend=backend, parallel=workers, **SCENARIO,
        )
        bit_identical = bit_identical and (other == points)

    point = points[0]
    return {
        "label": f"channel-contention-n{SCENARIO['n']}",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        **SCENARIO,
        "mac": "csma",
        "trials": trials,
        "seed": seed,
        "seconds": round(elapsed, 3),
        "trials_per_sec": round(trials / elapsed, 1),
        "bit_identical": bit_identical,
        "delivery": {k: round(v, 4) for k, v in point.delivery.items()},
        "collisions": {k: round(v, 1) for k, v in point.collisions.items()},
        "gap": round(point.delivery["si"] - point.delivery["flooding"], 4),
    }


def check_contention_claim(summary: dict) -> None:
    """The acceptance criteria, shared by pytest and the CLI."""
    delivery = summary["delivery"]
    assert summary["bit_identical"], (
        "contention sweep differs across execution backends"
    )
    assert summary["gap"] >= GAP_FLOOR, (
        f"flooding {delivery['flooding']:.4f} vs SI {delivery['si']:.4f}: "
        f"gap {summary['gap']:.4f} below {GAP_FLOOR} — interference no "
        f"longer punishes redundancy"
    )
    assert delivery["flooding"] < delivery["sd"], (
        f"flooding {delivery['flooding']:.4f} not below SD "
        f"{delivery['sd']:.4f} under contention"
    )


def check_gate(summary: dict, bench_file: Path) -> None:
    """Fail when sweep throughput regressed past the floor."""
    previous = latest_perf_point(bench_file, summary["label"])
    if previous is None:
        return
    floor = REGRESSION_FLOOR * float(previous["trials_per_sec"])
    assert summary["trials_per_sec"] >= floor, (
        f"contention sweep regressed: {summary['trials_per_sec']:.1f} "
        f"trials/s < {floor:.1f} (70% of the committed "
        f"{previous['trials_per_sec']:.1f} from {previous.get('timestamp')})"
    )


def test_ideal_channel_is_bit_identical():
    """Pytest hook: the channel seam is free until a model is attached."""
    check_ideal_identity()


def test_backbone_survives_contention_flooding_does_not():
    """Pytest hook: the n=100 gap claim on a quick trial budget."""
    summary = run_bench(quick=True, trials=6, seed=42)
    check_contention_claim(summary)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small trial budget, thread backend only")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--trials", type=int, default=None,
                        help="paired trials (default 16; 6 with --quick)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--gate", action="store_true",
                        help="also fail below 0.7x the committed throughput")
    parser.add_argument("--update", action="store_true",
                        help="record a fresh baseline trajectory point")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    args = parser.parse_args(argv)

    trials = args.trials if args.trials is not None else (
        6 if args.quick else 16)
    summary = run_bench(quick=args.quick, trials=trials, seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"channel bench: n={summary['n']} d={summary['average_degree']}"
              f" mac={summary['mac']} trials={trials} ({summary['seconds']}s,"
              f" backends identical: {summary['bit_identical']})")
        header = " ".join(f"{p:>10}" for p in CONTENTION_PROTOCOLS)
        print(f"  {'':>10} | {header}")
        for axis in ("delivery", "collisions"):
            row = " ".join(f"{summary[axis][p]:>10.3f}"
                           for p in CONTENTION_PROTOCOLS)
            print(f"  {axis:>10} | {row}")
    try:
        check_contention_claim(summary)
        if args.gate:
            check_gate(summary, args.bench_file)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"OK: ideal identity holds; SI leads flooding by "
          f"{summary['gap']:.4f} delivery at n={summary['n']}")
    if args.update:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
