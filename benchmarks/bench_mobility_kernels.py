"""Mobility maintenance kernel benchmark with an equivalence + regression gate.

Measures per-tick backbone maintenance at n=2000 three ways:

* **kernel** — the array-native :class:`KernelMobilitySession` driven
  directly (what :class:`MobilitySession` dispatches to above the CSR
  cutover, and what the 100k workload runs): vectorised stepping with
  incremental grid re-binning, CSR edge-delta application and masked
  repair of exactly the dirty heads;
* **incremental** — the object-layer maintenance path
  (``MobilitySession(incremental=True)``): per-node dict/set repair of
  clustering, coverage caches and selections.  This is the
  apples-to-apples *maintenance vs maintenance* reference and the basis
  of the reported speedup;
* **rebuild** — the object layer's full per-tick rebuild
  (``MobilitySession()``): unit-disk reconstruction plus from-scratch
  clustering and backbone derivation, reported for context.

The routes alternate inside one process, best-of-``--reps`` each, so
machine-load drift hits all sides equally — the speedup is the honest
ratio, not an artefact of when each side ran.  Before any timing, a small
session is checked **bit-identical** tick-for-tick against the reference
(structures, backbones, churn); the bench refuses to report a speedup for
kernels that do not reproduce the reference numbers.

Modes (same discipline as ``bench_csr_construction.py``):

* default: measure and print;
* ``--update``: also append the point to ``BENCH_trials.json``
  (label ``mobility-kernels-n2000``);
* ``--gate``: skip the reference re-measurements and fail (exit 1) when
  kernel throughput drops below ``0.7x`` the committed point — the CI
  regression gate for the maintenance kernels.
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.geometry.mobility import RandomWaypoint
from repro.geometry.placement import uniform_placement
from repro.graph.network import Network
from repro.io.results import append_perf_point, latest_perf_point
from repro.maintenance.kernels import KernelMobilitySession
from repro.maintenance.session import MobilitySession

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: Fail the ``--gate`` run below this fraction of the committed throughput.
REGRESSION_FLOOR = 0.7

#: Per-tick node speed as a fraction of the transmission range.
SPEED_FRACTION = 0.05


def _geometry(n: int, degree: float, seed: int):
    """Shared placement + mobility recipe so every route sees one workload."""
    side = 100.0 * (n / 100.0) ** 0.5
    area = Area(side, side)
    radius = range_for_target_degree(n, degree, area)
    pts = uniform_placement(n, area, rng=np.random.default_rng(seed))
    speed = SPEED_FRACTION * radius
    model = RandomWaypoint(
        speed_range=(0.5 * speed, 1.5 * speed), pause_time=0.0, area=area,
        rng=np.random.default_rng(seed + 1),
    )
    return pts, radius, area, model


def _object_session(n: int, degree: float, seed: int,
                    incremental: bool) -> MobilitySession:
    """An object-layer session: full rebuild or incremental repair."""
    pts, radius, area, model = _geometry(n, degree, seed)
    net = Network.from_positions(pts, radius, area=area)
    return MobilitySession(net, model, incremental=incremental, kernel=False)


def _kernel_session(n: int, degree: float, seed: int) -> KernelMobilitySession:
    """The array-native session on the identical workload."""
    pts, radius, area, model = _geometry(n, degree, seed)
    return KernelMobilitySession(pts, radius, model, area=area,
                                 connectivity=True)


def check_equivalence(*, n: int = 350, degree: float = 12.0, seed: int = 7,
                      ticks: int = 3) -> None:
    """Assert the kernel session is bit-identical to the reference."""
    pts, radius, area, model = _geometry(n, degree, seed)
    net = Network.from_positions(pts, radius, area=area)
    ref = MobilitySession(net, model, kernel=False)
    _, _, _, kmodel = _geometry(n, degree, seed)
    ker = MobilitySession(net, kmodel, kernel=True)
    for tick in range(ticks):
        ro, rk = ref.step(1.0), ker.step(1.0)
        assert set(ro.network.graph.edges()) == set(rk.network.graph.edges()), (
            f"tick {tick}: kernel graph diverged from reference"
        )
        assert ro.structure.head_of == rk.structure.head_of, (
            f"tick {tick}: kernel clustering diverged from reference"
        )
        assert ro.backbone.gateways == rk.backbone.gateways, (
            f"tick {tick}: kernel gateway set diverged from reference"
        )
        assert (ro.cluster_churn, ro.backbone_churn, ro.link_changes) == (
            rk.cluster_churn, rk.backbone_churn, rk.link_changes
        ), f"tick {tick}: kernel churn diverged from reference"


def _time_ticks(session, ticks: int) -> float:
    """Wall clock of ``ticks`` steady-state maintenance steps.

    One untimed warm-up tick first (same discipline as the scaling
    workload, applied to every route alike): the measurement is the
    steady-state per-tick cost, not allocator warm-up on tick one.
    """
    session.step(1.0)
    t0 = time.perf_counter()
    for _ in range(ticks):
        session.step(1.0)
    return time.perf_counter() - t0


def run_bench(*, n: int = 2000, degree: float = 12.0, seed: int = 11,
              ticks: int = 4, reps: int = 4,
              with_reference: bool = True) -> dict:
    """Interleaved best-of-``reps`` kernel vs object maintenance timing."""
    check_equivalence(degree=degree)
    kernel_best = incr_best = rebuild_best = float("inf")
    for _ in range(reps):
        if with_reference:
            incr_best = min(incr_best, _time_ticks(
                _object_session(n, degree, seed, incremental=True), ticks))
            rebuild_best = min(rebuild_best, _time_ticks(
                _object_session(n, degree, seed, incremental=False), ticks))
        kernel_best = min(kernel_best,
                          _time_ticks(_kernel_session(n, degree, seed), ticks))
    summary = {
        "label": f"mobility-kernels-n{n}",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n": n,
        "degree": degree,
        "seed": seed,
        "ticks": ticks,
        "kernel_seconds": round(kernel_best, 4),
        "kernel_ticks_per_sec": round(ticks / kernel_best, 2),
    }
    if with_reference:
        summary["incremental_seconds"] = round(incr_best, 4)
        summary["incremental_ticks_per_sec"] = round(ticks / incr_best, 2)
        summary["rebuild_seconds"] = round(rebuild_best, 4)
        summary["rebuild_ticks_per_sec"] = round(ticks / rebuild_best, 2)
        summary["speedup"] = round(incr_best / kernel_best, 2)
        summary["speedup_vs_rebuild"] = round(rebuild_best / kernel_best, 2)
    return summary


def check_gate(summary: dict, bench_file: Path) -> None:
    """Fail when kernel maintenance throughput regressed past the floor."""
    previous = latest_perf_point(bench_file, summary["label"])
    if previous is None:
        return
    floor = REGRESSION_FLOOR * float(previous["kernel_ticks_per_sec"])
    assert summary["kernel_ticks_per_sec"] >= floor, (
        f"mobility kernels regressed: {summary['kernel_ticks_per_sec']:.2f} "
        f"ticks/s < {floor:.2f} (70% of the committed "
        f"{previous['kernel_ticks_per_sec']:.2f} from "
        f"{previous.get('timestamp')})"
    )


def test_kernel_session_matches_reference():
    """CI equivalence check: kernel ticks reproduce the object layer."""
    check_equivalence()


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--degree", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--ticks", type=int, default=4)
    parser.add_argument("--reps", type=int, default=4)
    parser.add_argument("--gate", action="store_true",
                        help="equivalence check + fail below 0.7x the "
                             "committed kernel throughput (skips the slow "
                             "reference measurements; implies --no-record)")
    parser.add_argument("--update", action="store_true",
                        help="record a fresh baseline point")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    args = parser.parse_args(argv)

    summary = run_bench(n=args.n, degree=args.degree, seed=args.seed,
                        ticks=args.ticks, reps=args.reps,
                        with_reference=not args.gate)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"mobility maintenance at n={summary['n']} "
              f"d={summary['degree']} ({summary['ticks']} ticks, "
              f"equivalence checked)")
        print(f"  kernel       {summary['kernel_seconds']:>8.4f}s "
              f"({summary['kernel_ticks_per_sec']:.2f} ticks/s)")
        if "speedup" in summary:
            print(f"  incremental  {summary['incremental_seconds']:>8.4f}s "
                  f"({summary['incremental_ticks_per_sec']:.2f} ticks/s)")
            print(f"  rebuild      {summary['rebuild_seconds']:>8.4f}s "
                  f"({summary['rebuild_ticks_per_sec']:.2f} ticks/s)")
            print(f"  speedup      {summary['speedup']:.2f}x vs incremental "
                  f"maintenance ({summary['speedup_vs_rebuild']:.2f}x vs "
                  f"full rebuild)")
    if args.gate:
        try:
            check_gate(summary, args.bench_file)
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        previous = latest_perf_point(args.bench_file, summary["label"])
        base = (f"{previous['kernel_ticks_per_sec']:.2f} ticks/s committed"
                if previous else "no committed baseline")
        print(f"OK: mobility kernel gate passed ({base})")
        return 0
    if args.update:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
