"""Figure 6: average size of the CDS — static backbone vs MO_CDS.

Paper claims reproduced here:

* both algorithms yield similar CDS sizes, with the static backbone
  slightly (insignificantly) smaller;
* the 2.5-hop and 3-hop static backbones differ by well under a few
  percent.
"""

import pytest

from repro.workload.experiments import MO_CDS, STATIC_25, STATIC_3, run_fig6

from _bench_utils import record_tables


@pytest.mark.benchmark(group="fig6")
def test_fig6_average_cds_size(benchmark, env):
    tables = benchmark.pedantic(run_fig6, args=(env,), rounds=1, iterations=1)
    record_tables(benchmark, tables)
    for d, table in tables.items():
        static25 = table.get(STATIC_25).as_dict()
        static3 = table.get(STATIC_3).as_dict()
        mo = table.get(MO_CDS).as_dict()
        for n in static25:
            # Shape: static <= MO_CDS (paired samples; tiny slack for the
            # quick fidelity's 12-trial noise).
            assert static25[n] <= mo[n] + 0.5, (d, n)
            # Shape: coverage policies nearly indistinguishable (paper: <2%;
            # allow more at quick fidelity).
            assert static3[n] == pytest.approx(static25[n], rel=0.10), (d, n)
            # Sanity: CDS sizes are a sensible fraction of n.
            assert 0.15 * n < static25[n] <= n
