"""Micro-benchmarks of the library's hot paths.

Not a paper figure — these guard the implementation's own performance
(the experiment harness runs tens of thousands of constructions per full
figure, so regressions here multiply).
"""

import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.coverage.policy import compute_all_coverage_sets
from repro.geometry.placement import uniform_placement
from repro.graph.build import unit_disk_graph
from repro.graph.generators import random_geometric_network
from repro.types import CoveragePolicy


@pytest.fixture(scope="module")
def net100():
    return random_geometric_network(100, 18.0, rng=5)


@pytest.fixture(scope="module")
def clustering100(net100):
    return lowest_id_clustering(net100.graph)


@pytest.mark.benchmark(group="speed")
def test_speed_unit_disk_graph(benchmark):
    pts = uniform_placement(300, rng=0)
    graph = benchmark(unit_disk_graph, pts, 12.0)
    assert graph.num_nodes == 300


@pytest.mark.benchmark(group="speed")
def test_speed_lowest_id_clustering(benchmark, net100):
    cs = benchmark(lowest_id_clustering, net100.graph)
    assert cs.num_clusters >= 1


@pytest.mark.benchmark(group="speed")
def test_speed_coverage_sets(benchmark, clustering100):
    covs = benchmark(compute_all_coverage_sets, clustering100,
                     CoveragePolicy.TWO_FIVE_HOP)
    assert len(covs) == clustering100.num_clusters


@pytest.mark.benchmark(group="speed")
def test_speed_static_backbone(benchmark, clustering100):
    bb = benchmark(build_static_backbone, clustering100)
    assert bb.size >= clustering100.num_clusters


@pytest.mark.benchmark(group="speed")
def test_speed_dynamic_broadcast(benchmark, clustering100):
    covs = compute_all_coverage_sets(clustering100)
    dyn = benchmark(broadcast_sd, clustering100, 0, coverage_sets=covs)
    assert dyn.result.delivered_to_all(clustering100.graph)
