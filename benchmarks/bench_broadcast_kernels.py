"""Batched broadcast-kernel benchmark with an equivalence + regression gate.

Measures the ``broadcast`` perf stage on the flooding-comparison metric
(blind flooding + SI-CDS + SD-CDS delivery per trial) at n=2000 two ways:

* **reference** — per-item trial calls, delivery on the object-path
  algorithms (what every point below ``kernels.KERNEL_CUTOVER`` runs);
* **kernel** — one ``run_batch`` wave of ``--batch`` trials through the
  union-stacked array kernels (`docs/broadcast_kernels.md`).

The two routes alternate inside one process, best-of-``--reps`` each, so
machine-load drift hits both sides equally — the speedup is the honest
ratio, not an artefact of when each side ran.  Before any timing, a
sample wave is checked **bit-identical** to its per-item replay; the
bench refuses to report a speedup for a kernel that does not reproduce
the reference numbers.

Modes (same discipline as ``bench_csr_construction.py``):

* default: measure and print;
* ``--update``: also append the point to ``BENCH_trials.json``
  (label ``broadcast-kernels-n2000-b128``);
* ``--gate``: fail (exit 1) when the measured speedup drops below
  ``0.7x`` the committed point — the CI regression gate.
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import perf
from repro.exec.scenarios import connected_scenario
from repro.exec.spec import TrialSpec, resolve_cached
from repro.geometry.area import Area
from repro.io.results import append_perf_point, latest_perf_point

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: Fail the ``--gate`` run below this fraction of the committed speedup.
REGRESSION_FLOOR = 0.7

#: Stages the kernel route times itself under (the reference route books
#: everything under the engine-era ``broadcast`` stage).
KERNEL_STAGES = ("broadcast.flooding", "broadcast.si", "broadcast.sd")


def _stage_seconds(counters: dict, stages) -> float:
    return sum(counters[s]["seconds"] for s in stages if s in counters)


def _items(seed: int, count: int, start: int = 0):
    seeds = np.random.SeedSequence(seed).spawn(start + count)[start:]
    return [(start + k, np.random.default_rng(s))
            for k, s in enumerate(seeds)]


def run_bench(*, n: int = 2000, degree: float = 10.0, batch: int = 128,
              ref_trials: int = 32, reps: int = 4, seed: int = 9,
              scenario_root: int = 99) -> dict:
    """Interleaved best-of-``reps`` broadcast-stage timings, both routes."""
    area = Area.paper()
    spec = TrialSpec.create(
        "repro.workload.experiments:make_figure_trial",
        metrics="flooding", n=n, degree=degree,
        width=float(area.width), height=float(area.height),
        scenario_root=scenario_root,
    )
    trial = resolve_cached(spec)
    run_batch = getattr(trial, "run_batch", None)
    assert run_batch is not None, (
        f"n={n} is below KERNEL_CUTOVER; nothing to measure"
    )

    print(f"warming {batch} scenarios at n={n} d={degree} ...", flush=True)
    for index in range(batch):
        connected_scenario(n, degree, root=scenario_root, index=index)

    # Equivalence first: a wave must replay its per-item calls bit for
    # bit (same spawned streams on both sides).
    wave = run_batch(_items(seed, batch))
    replay = [trial(k, g) for k, g in _items(seed, ref_trials)]
    assert wave[:ref_trials] == replay, (
        "kernel wave diverged from per-item replay — refusing to time a "
        "non-equivalent kernel"
    )

    was_enabled = perf.enabled()
    perf.enable()
    try:
        ref_best = kernel_best = float("inf")
        for rep in range(reps):
            before = perf.snapshot()
            for k, g in _items(seed + 1 + rep, ref_trials):
                trial(k, g)
            mid = perf.snapshot()
            run_batch(_items(seed + 1 + rep, batch))
            after = perf.snapshot()
            ref_s = (_stage_seconds(mid, ("broadcast",))
                     - _stage_seconds(before, ("broadcast",)))
            kernel_s = (_stage_seconds(after, KERNEL_STAGES)
                        - _stage_seconds(mid, KERNEL_STAGES))
            ref_best = min(ref_best, ref_s / ref_trials)
            kernel_best = min(kernel_best, kernel_s / batch)
            print(f"  rep {rep}: ref {1e3 * ref_s / ref_trials:.2f} "
                  f"ms/trial, kernel {1e3 * kernel_s / batch:.2f} ms/trial",
                  flush=True)
    finally:
        perf.enable(was_enabled)

    speedup = ref_best / kernel_best
    return {
        "label": f"broadcast-kernels-n{n}-b{batch}",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n": n,
        "degree": degree,
        "batch": batch,
        "ref_trials": ref_trials,
        "reps": reps,
        "seed": seed,
        "equivalent": True,
        "ref_ms_per_trial": round(1e3 * ref_best, 3),
        "kernel_ms_per_trial": round(1e3 * kernel_best, 3),
        "speedup": round(speedup, 2),
        "kernel_trials_per_sec": round(1.0 / kernel_best, 1),
    }


def check_gate(summary: dict, bench_file: Path) -> None:
    """Fail when the kernel speedup regressed past the floor."""
    previous = latest_perf_point(bench_file, summary["label"])
    if previous is None:
        return
    floor = REGRESSION_FLOOR * float(previous["speedup"])
    assert summary["speedup"] >= floor, (
        f"broadcast kernels regressed: {summary['speedup']:.2f}x < "
        f"{floor:.2f}x (70% of the committed {previous['speedup']:.2f}x "
        f"from {previous.get('timestamp')})"
    )


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--degree", type=float, default=10.0)
    parser.add_argument("--batch", type=int, default=128)
    parser.add_argument("--ref-trials", type=int, default=32)
    parser.add_argument("--reps", type=int, default=4)
    parser.add_argument("--seed", type=int, default=9)
    parser.add_argument("--gate", action="store_true",
                        help="fail below 0.7x the committed speedup "
                             "(implies --no-record)")
    parser.add_argument("--update", action="store_true",
                        help="record a fresh baseline point")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    args = parser.parse_args(argv)

    summary = run_bench(n=args.n, degree=args.degree, batch=args.batch,
                        ref_trials=args.ref_trials, reps=args.reps,
                        seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"broadcast stage at n={summary['n']} d={summary['degree']} "
              f"(batch {summary['batch']}, equivalence checked)")
        print(f"  reference {summary['ref_ms_per_trial']:>8.3f} ms/trial")
        print(f"  kernels   {summary['kernel_ms_per_trial']:>8.3f} ms/trial "
              f"({summary['kernel_trials_per_sec']:,.0f} trials/s)")
        print(f"  speedup   {summary['speedup']:>8.2f}x")
    if args.gate:
        try:
            check_gate(summary, args.bench_file)
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        previous = latest_perf_point(args.bench_file, summary["label"])
        base = (f"{previous['speedup']:.2f}x committed"
                if previous else "no committed baseline")
        print(f"OK: broadcast-kernel gate passed ({base})")
        return 0
    if args.update:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
