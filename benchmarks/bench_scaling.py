"""Scaling bench: the pipeline far beyond the paper's n=100.

Checks that (a) end-to-end construction stays fast at thousands of nodes
(the spatial-hash build and linear clustering doing their jobs), and
(b) the backbone and dynamic-forward *fractions* stay roughly flat for
fixed density — the property that makes the approach usable at scale.
"""

import pytest

from repro.workload.scaling import run_scaling_study

NS = (100, 300, 1000, 3000)


@pytest.mark.benchmark(group="scaling")
def test_pipeline_scaling(benchmark):
    points = benchmark.pedantic(
        run_scaling_study, kwargs=dict(ns=NS, average_degree=12.0, rng=1),
        rounds=1, iterations=1,
    )
    print()
    print(f"{'n':>6} {'comp':>6} | {'build':>7} {'cluster':>8} "
          f"{'coverage':>9} {'backbone':>9} | {'|CDS|/n':>8} {'dyn/n':>7}")
    for p in points:
        print(f"{p.n:>6} {p.component_n:>6} | {p.build_seconds:>7.3f} "
              f"{p.cluster_seconds:>8.3f} {p.coverage_seconds:>9.3f} "
              f"{p.backbone_seconds:>9.3f} | {p.backbone_fraction:>8.3f} "
              f"{p.dynamic_fraction:>7.3f}")
    benchmark.extra_info["points"] = [
        {"n": p.n, "total_seconds": p.total_seconds,
         "backbone_fraction": p.backbone_fraction} for p in points
    ]
    largest = points[-1]
    # Whole pipeline at n=3000 in well under ten seconds.
    assert largest.total_seconds < 10.0
    # Fractions roughly flat across a 30x size range (fixed density).
    fractions = [p.backbone_fraction for p in points]
    assert max(fractions) - min(fractions) < 0.15
    for p in points:
        assert p.dynamic_fraction <= p.backbone_fraction + 0.02
