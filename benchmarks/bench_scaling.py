"""Scaling bench: the pipeline far beyond the paper's n=100.

Checks that (a) end-to-end construction stays fast at thousands of nodes
(the spatial-hash build and linear clustering doing their jobs), and
(b) the backbone and dynamic-forward *fractions* stay roughly flat for
fixed density — the property that makes the approach usable at scale.

Run as a script with ``--large`` to push the CSR kernels to ``n=100000``
(broadcast off, pure array path) and append the measured point —
construction throughput and process peak RSS — to ``BENCH_trials.json``.
Add ``--broadcast`` to also run the SD broadcast-delivery kernel over the
giant component (array-native end to end; this is how the ``n=1000000``
broadcast point is produced) and ``--gate`` to fail if throughput
regressed below 0.7x the last committed point with the same label.
"""

import argparse
import json
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro import perf
from repro.io.results import append_perf_point, latest_perf_point
from repro.workload.scaling import run_scaling_study

NS = (100, 300, 1000, 3000)

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"


@pytest.mark.benchmark(group="scaling")
def test_pipeline_scaling(benchmark):
    points = benchmark.pedantic(
        run_scaling_study, kwargs=dict(ns=NS, average_degree=12.0, rng=1),
        rounds=1, iterations=1,
    )
    print()
    print(f"{'n':>6} {'comp':>6} | {'build':>7} {'cluster':>8} "
          f"{'coverage':>9} {'backbone':>9} {'bcast':>7} | "
          f"{'|CDS|/n':>8} {'dyn/n':>7}")
    for p in points:
        print(f"{p.n:>6} {p.component_n:>6} | {p.build_seconds:>7.3f} "
              f"{p.cluster_seconds:>8.3f} {p.coverage_seconds:>9.3f} "
              f"{p.backbone_seconds:>9.3f} {p.broadcast_seconds:>7.3f} | "
              f"{p.backbone_fraction:>8.3f} {p.dynamic_fraction:>7.3f}")
    benchmark.extra_info["points"] = [
        {"n": p.n, "total_seconds": p.total_seconds,
         "backbone_fraction": p.backbone_fraction} for p in points
    ]
    largest = points[-1]
    # Whole pipeline at n=3000 in well under ten seconds.
    assert largest.total_seconds < 10.0
    # Fractions roughly flat across a 30x size range (fixed density).
    fractions = [p.backbone_fraction for p in points]
    assert max(fractions) - min(fractions) < 0.15
    for p in points:
        assert p.dynamic_fraction <= p.backbone_fraction + 0.02


def run_large(n: int = 100_000, degree: float = 12.0, seed: int = 1,
              broadcast: bool = False) -> dict:
    """One giant-``n`` pipeline run on the pure CSR path, stage-streamed."""
    stages = {}

    def on_stage(_n, stage, seconds):
        stages[stage] = round(seconds, 3)
        print(f"  {stage:<14} {seconds:>8.3f}s", flush=True)

    print(f"scaling the CSR pipeline to n={n} (degree {degree}"
          f"{', with SD broadcast' if broadcast else ''})")
    points = run_scaling_study(
        ns=(n,), average_degree=degree, rng=seed,
        on_stage=on_stage, with_broadcast=broadcast,
    )
    p = points[0]
    label = f"csr-scaling-n{n}" + ("+broadcast" if broadcast else "")
    summary = {
        "label": label,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n": p.n,
        "component_n": p.component_n,
        "degree": degree,
        "seed": seed,
        "stages": stages,
        "total_seconds": round(p.total_seconds, 3),
        "nodes_per_sec": round(p.n / p.total_seconds),
        "backbone_fraction": round(p.backbone_fraction, 4),
        "peak_rss_bytes": perf.peak_rss_bytes(),
    }
    if broadcast:
        summary["broadcast_seconds"] = round(p.broadcast_seconds, 3)
        summary["broadcast_nodes_per_sec"] = round(
            p.component_n / p.broadcast_seconds)
        summary["dynamic_fraction"] = round(p.dynamic_fraction, 4)
    return summary


def gate_against_recorded(summary: dict, bench_file: Path,
                          floor: float = 0.7) -> None:
    """Fail if throughput fell below ``floor`` times the last same-label
    point in ``bench_file`` (construction and, when present, broadcast)."""
    recorded = latest_perf_point(bench_file, summary["label"])
    if recorded is None:
        raise SystemExit(f"gate: no recorded point labelled "
                         f"{summary['label']!r} in {bench_file}")
    for metric in ("nodes_per_sec", "broadcast_nodes_per_sec"):
        if metric not in summary or metric not in recorded:
            continue
        ratio = summary[metric] / recorded[metric]
        status = "ok" if ratio >= floor else "REGRESSION"
        print(f"gate {metric}: {summary[metric]:,} vs recorded "
              f"{recorded[metric]:,} ({ratio:.2f}x, floor {floor}) {status}")
        if ratio < floor:
            raise SystemExit(1)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--large", action="store_true",
                        help="run the n=100000 CSR-path point")
    parser.add_argument("--n", type=int, default=100_000)
    parser.add_argument("--degree", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--broadcast", action="store_true",
                        help="include the SD broadcast-delivery kernel")
    parser.add_argument("--gate", action="store_true",
                        help="compare against the last committed point "
                             "instead of recording a new one")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    parser.add_argument("--no-record", action="store_true")
    args = parser.parse_args(argv)
    if not args.large:
        parser.error("script mode needs --large (pytest runs the rest)")
    summary = run_large(n=args.n, degree=args.degree, seed=args.seed,
                        broadcast=args.broadcast)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        extra = ""
        if args.broadcast:
            extra = (f", SD broadcast {summary['broadcast_seconds']:.3f}s "
                     f"({summary['broadcast_nodes_per_sec']:,.0f} nodes/s)")
        print(f"n={summary['n']} pipeline {summary['total_seconds']:.3f}s "
              f"({summary['nodes_per_sec']:,.0f} nodes/s), "
              f"peak RSS {summary['peak_rss_bytes'] / 2**20:.0f} MiB, "
              f"backbone fraction {summary['backbone_fraction']:.3f}{extra}")
    if args.gate:
        gate_against_recorded(summary, args.bench_file)
        return 0
    if not args.no_record:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
