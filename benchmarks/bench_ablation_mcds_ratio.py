"""Ablation: measured approximation ratios against the exact MCDS.

The paper proves constant approximation ratios for both backbones (Section
4, citing [14] and [1]).  On small instances where the exact MCDS is
computable, we measure the realised ratios and assert they stay below a
small constant — far below the theoretical worst-case bounds.
"""

import pytest

from repro.mcds.ratio import approximation_ratio_study


@pytest.mark.benchmark(group="ablation-mcds")
def test_approximation_ratios(benchmark):
    samples = benchmark.pedantic(
        approximation_ratio_study,
        kwargs=dict(samples=15, n=14, average_degree=5.0, rng=2003),
        rounds=1, iterations=1,
    )
    static = [s.static_ratio for s in samples]
    dynamic = [s.dynamic_ratio for s in samples]
    mo = [s.mo_ratio for s in samples]
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    print()
    print(f"samples={len(samples)}, n=14, d=5")
    print(f"static/MCDS : mean {mean(static):.2f}  worst {max(static):.2f}")
    print(f"dynamic/MCDS: mean {mean(dynamic):.2f}  worst {max(dynamic):.2f}")
    print(f"mo-cds/MCDS : mean {mean(mo):.2f}  worst {max(mo):.2f}")
    benchmark.extra_info["ratios"] = {
        "static_mean": mean(static), "static_worst": max(static),
        "dynamic_mean": mean(dynamic), "dynamic_worst": max(dynamic),
        "mo_mean": mean(mo), "mo_worst": max(mo),
    }
    # Constant-ratio claim: comfortably bounded on these instances.
    assert max(static) <= 4.0
    assert max(dynamic) <= 4.0
    assert max(mo) <= 4.0
    # All are genuine CDS sizes: never below 1x optimum for the backbones.
    assert min(static) >= 1.0
    assert min(mo) >= 1.0
