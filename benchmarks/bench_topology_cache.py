"""Cached vs from-scratch backbone maintenance under a link event stream.

The tentpole claim of the :mod:`repro.topology` layer: when the backbone
must stay current after **every** mobility-induced link event (the paper's
static-backbone maintenance regime), repairing through a shared
:class:`~repro.topology.view.TopologyView` and
:class:`~repro.topology.coverage_index.CoverageIndex` (ball-local
invalidation, single-edge clustering repairs) beats recomputing clustering
+ coverage sets + gateway selections from scratch at each event — while
producing identical structures throughout.

Runs standalone (the CI smoke test and ``make bench-topology``)::

    PYTHONPATH=src python benchmarks/bench_topology_cache.py --quick
    PYTHONPATH=src python benchmarks/bench_topology_cache.py --json

It is also collected by pytest (``bench_*.py``): the equivalence test below
replays a small stream through both paths and asserts event-for-event
equality; timing assertions stay out of the test suite.
"""

from __future__ import annotations

import argparse
import json
import time
from typing import List, Tuple

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.geometry.mobility import RandomWalk
from repro.graph.adjacency import Graph
from repro.graph.generators import random_geometric_network
from repro.maintenance.incremental import IncrementalLowestIdClustering
from repro.topology.coverage_index import CoverageIndex
from repro.types import CoveragePolicy

#: One link event: ("add" | "remove", u, v).
Event = Tuple[str, int, int]

#: What both strategies must agree on after every event.
Snapshot = Tuple[dict, frozenset, dict]


def build_event_stream(n: int, ticks: int, *, degree: float = 6.0,
                       speed: float = 0.1,
                       seed: int = 0) -> Tuple[Graph, List[Event]]:
    """A start graph plus the link events of a random-walk mobility run.

    Each tick moves every node ``speed`` units (the paper's 100x100 area;
    at ``n=250``/degree 6 the radio range is ~8.8 units, so the default is
    ~1% of the range per tick — a HELLO-interval timescale).  The tick's
    edge diff is flattened into deterministic single-link events: removals
    in sorted order, then insertions in sorted order.
    """
    network = random_geometric_network(n, degree, rng=seed)
    mobility = RandomWalk(speed=speed, rng=seed + 1)
    ids = network.graph.nodes()
    start = network.graph.copy()
    events: List[Event] = []
    prev = set(start.edges())
    for _ in range(ticks):
        moved = mobility.step(network.position_array(ids), 1.0)
        network = network.moved(moved, order=ids)
        cur = set(network.graph.edges())
        events.extend(("remove", u, v) for u, v in sorted(prev - cur))
        events.extend(("add", u, v) for u, v in sorted(cur - prev))
        prev = cur
    return start, events


def _snapshot(structure, backbone) -> Snapshot:
    return (dict(structure.head_of), backbone.nodes, dict(backbone.selections))


def run_scratch(start: Graph, events: List[Event],
                policy: CoveragePolicy) -> Tuple[float, List[Snapshot]]:
    """Full recomputation after every event (the pre-topology baseline)."""
    graph = start.copy()
    snapshots: List[Snapshot] = []
    t0 = time.perf_counter()
    for op, u, v in events:
        if op == "remove":
            graph.remove_edge(u, v)
        else:
            graph.add_edge(u, v)
        structure = lowest_id_clustering(graph)
        snapshots.append(_snapshot(structure,
                                   build_static_backbone(structure, policy)))
    return time.perf_counter() - t0, snapshots


def run_incremental(start: Graph, events: List[Event],
                    policy: CoveragePolicy) -> Tuple[float, List[Snapshot]]:
    """Single-edge repairs + generation-keyed coverage cache."""
    snapshots: List[Snapshot] = []
    t0 = time.perf_counter()
    clustering = IncrementalLowestIdClustering(start)
    index = CoverageIndex(clustering.view, policy)
    structure = clustering.structure(graph=clustering.graph)
    build_static_backbone(structure, policy, index=index)  # warm the cache
    for op, u, v in events:
        if op == "remove":
            summary = clustering.remove_edge(u, v)
        else:
            summary = clustering.add_edge(u, v)
        if summary.role_changes:
            index.invalidate_roles(summary.role_changes)
            # head_of changed: the old snapshot is stale.
            structure = clustering.structure(graph=clustering.graph)
        # else: the snapshot aliases the live graph and head_of is
        # unchanged, so it is still current — no rebuild needed.
        backbone = build_static_backbone(structure, policy, index=index)
        snapshots.append(_snapshot(structure, backbone))
    return time.perf_counter() - t0, snapshots


def check_equivalence(scratch: List[Snapshot],
                      incremental: List[Snapshot]) -> None:
    """Both strategies must produce identical structures at every event."""
    assert len(scratch) == len(incremental)
    for i, (a, b) in enumerate(zip(scratch, incremental)):
        assert a[0] == b[0], f"head assignment diverged at event {i}"
        assert a[1] == b[1], f"backbone nodes diverged at event {i}"
        assert a[2] == b[2], f"gateway selections diverged at event {i}"


def run_bench(*, n: int, ticks: int, degree: float, speed: float,
              seed: int, policy: CoveragePolicy) -> dict:
    """Execute both strategies on one event stream and summarise."""
    start, events = build_event_stream(n, ticks, degree=degree, speed=speed,
                                       seed=seed)
    scratch_s, scratch_snaps = run_scratch(start, events, policy)
    inc_s, inc_snaps = run_incremental(start, events, policy)
    check_equivalence(scratch_snaps, inc_snaps)
    n_events = max(len(events), 1)
    return {
        "n": n,
        "ticks": ticks,
        "degree": degree,
        "speed": speed,
        "policy": policy.label,
        "events": len(events),
        "scratch_ms_per_event": round(1e3 * scratch_s / n_events, 3),
        "incremental_ms_per_event": round(1e3 * inc_s / n_events, 3),
        "speedup": round(scratch_s / inc_s, 2) if inc_s > 0 else float("inf"),
    }


def test_strategies_agree_on_small_stream():
    """Pytest hook: event-for-event equality on a small mobility stream."""
    start, events = build_event_stream(40, 5, speed=1.0, seed=3)
    policy = CoveragePolicy.TWO_FIVE_HOP
    _, scratch_snaps = run_scratch(start, events, policy)
    _, inc_snaps = run_incremental(start, events, policy)
    assert events, "stream should contain link events"
    check_equivalence(scratch_snaps, inc_snaps)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small instance for CI smoke (seconds)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--n", type=int, default=None,
                        help="node count (default 250; 100 with --quick)")
    parser.add_argument("--ticks", type=int, default=None,
                        help="mobility ticks (default 40; 15 with --quick)")
    parser.add_argument("--degree", type=float, default=6.0)
    parser.add_argument("--speed", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail (exit 1) if speedup falls below this")
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (100 if args.quick else 250)
    ticks = args.ticks if args.ticks is not None else (
        15 if args.quick else 40)
    summary = run_bench(n=n, ticks=ticks, degree=args.degree,
                        speed=args.speed, seed=args.seed,
                        policy=CoveragePolicy.TWO_FIVE_HOP)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"topology cache bench: n={summary['n']} "
              f"ticks={summary['ticks']} degree={summary['degree']} "
              f"speed={summary['speed']} events={summary['events']}")
        print(f"  scratch:     {summary['scratch_ms_per_event']:8.2f} "
              f"ms/event")
        print(f"  incremental: {summary['incremental_ms_per_event']:8.2f} "
              f"ms/event")
        print(f"  speedup:     {summary['speedup']:.2f}x "
              f"(structures identical after every event)")
    if summary["events"] == 0:
        print("note: stream produced no link events (speed/ticks too low); "
              "speedup is meaningless and the --min-speedup gate is skipped")
        return 0
    if args.min_speedup and summary["speedup"] < args.min_speedup:
        print(f"FAIL: speedup {summary['speedup']:.2f}x below required "
              f"{args.min_speedup:.2f}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
