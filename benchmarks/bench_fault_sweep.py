"""Delivery under faults: plain backbones vs the reliable layer.

The headline claim of the :mod:`repro.faults` subsystem: at 20% per-delivery
loss the plain SI/SD backbone broadcasts measurably degrade (one lost relay
delivery severs a subtree), while the reliable ACK/retransmit variants hold
delivery at >= 0.99 — at a quantified retransmission-overhead and
recovery-latency price.  The sweep is bit-deterministic: same seed, same
curves, independent of the execution backend and worker count (the sweep
runs as a picklable trial spec; see :mod:`repro.exec.backends`).

Runs standalone (the CI smoke test and ``make bench-faults``)::

    PYTHONPATH=src python benchmarks/bench_fault_sweep.py --quick
    PYTHONPATH=src python benchmarks/bench_fault_sweep.py --json

It is also collected by pytest (``bench_*.py``): the delivery test below
runs the small sweep and asserts the reliability claim; timing stays out of
the test suite.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.workload.faultsweep import PROTOCOLS, run_fault_sweep

#: The bench scenario (chosen so the unreliable variants visibly degrade:
#: sparse-ish networks keep single points of failure common).
SCENARIO = {"n": 40, "average_degree": 8.0, "crash_fraction": 0.1}
QUICK = {"n": 25, "average_degree": 8.0, "crash_fraction": 0.1}

#: Acceptance thresholds at the 0.2-loss point.
RELIABLE_FLOOR = 0.99
UNRELIABLE_CEILING = 0.97


def run_bench(*, quick: bool, trials: int, parallel: int,
              seed: int) -> dict:
    """Run the sweep and summarise the 0.2-loss point."""
    scenario = QUICK if quick else SCENARIO
    t0 = time.perf_counter()
    points = run_fault_sweep(
        losses=(0.0, 0.2), trials=trials, parallel=parallel, rng=seed,
        **scenario,
    )
    elapsed = time.perf_counter() - t0
    lossy = next(p for p in points if p.loss_probability == 0.2)
    return {
        **scenario,
        "trials": trials,
        "seed": seed,
        "seconds": round(elapsed, 2),
        "points": [
            {"loss": p.loss_probability,
             "delivery": {k: round(v, 4) for k, v in p.delivery.items()},
             "overhead": {k: round(v, 3) for k, v in p.overhead.items()},
             "latency": {k: round(v, 2) for k, v in p.latency.items()}}
            for p in points
        ],
        "reliable_si_delivery_at_0.2": round(lossy.delivery["reliable-si"], 4),
        "plain_si_delivery_at_0.2": round(lossy.delivery["si"], 4),
    }


def check_reliability_claim(summary: dict) -> None:
    """The acceptance criterion, shared by pytest and the CLI gate."""
    reliable = summary["reliable_si_delivery_at_0.2"]
    plain = summary["plain_si_delivery_at_0.2"]
    assert reliable >= RELIABLE_FLOOR, (
        f"reliable SI delivery {reliable:.4f} below {RELIABLE_FLOOR} "
        f"at 20% loss"
    )
    assert plain <= UNRELIABLE_CEILING, (
        f"plain SI delivery {plain:.4f} does not degrade "
        f"(> {UNRELIABLE_CEILING}) — the scenario is too easy to "
        f"demonstrate anything"
    )


def test_reliable_si_beats_plain_si_under_loss():
    """Pytest hook: reliable SI >= 0.99 where plain SI measurably degrades."""
    summary = run_bench(quick=True, trials=6, parallel=2, seed=0)
    check_reliability_claim(summary)


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small instance for CI smoke (seconds)")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON")
    parser.add_argument("--trials", type=int, default=None,
                        help="paired trials per point (default 12; 6 with "
                             "--quick)")
    parser.add_argument("--parallel", type=int, default=2,
                        help="worker count (>= 2 keeps results identical "
                             "across counts)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    trials = args.trials if args.trials is not None else (
        6 if args.quick else 12)
    summary = run_bench(quick=args.quick, trials=trials,
                        parallel=args.parallel, seed=args.seed)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"fault sweep bench: n={summary['n']} "
              f"d={summary['average_degree']} "
              f"crash={summary['crash_fraction']} trials={trials} "
              f"({summary['seconds']}s)")
        header = " ".join(f"{p:>12}" for p in PROTOCOLS)
        for axis in ("delivery", "overhead", "latency"):
            print(f"  {axis}:")
            print(f"  {'loss':>6} | {header}")
            for point in summary["points"]:
                row = " ".join(f"{point[axis][p]:>12.3f}"
                               for p in PROTOCOLS)
                print(f"  {point['loss']:>6g} | {row}")
    try:
        check_reliability_claim(summary)
    except AssertionError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"OK: reliable SI {summary['reliable_si_delivery_at_0.2']:.4f} "
          f">= {RELIABLE_FLOOR} at 20% loss "
          f"(plain SI {summary['plain_si_delivery_at_0.2']:.4f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
