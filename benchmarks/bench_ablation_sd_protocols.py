"""Ablation (extension): the SD-protocol zoo around the dynamic backbone.

Places the paper's dynamic backbone among the source-dependent schemes its
related-work section cites: multipoint relay, dominant pruning, the
Pagani–Rossi forwarding tree, coverage-based RAD back-off, and passive
clustering.  Forward-node counts AND delivery ratios are reported — passive
clustering's partial delivery is part of the story.
"""

import numpy as np
import pytest

from repro.broadcast.dominant_pruning import broadcast_dominant_pruning
from repro.broadcast.forwarding_tree import broadcast_forwarding_tree
from repro.broadcast.mpr import broadcast_mpr
from repro.broadcast.passive_clustering import broadcast_passive_clustering
from repro.broadcast.rad import broadcast_rad
from repro.broadcast.sd_cds import broadcast_sd
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network

SCENARIOS = [(60, 6.0), (60, 18.0)]
PROTOCOLS = ("dynamic", "mpr", "dominant-pruning", "forwarding-tree",
             "rad", "passive")


def measure():
    rng = np.random.default_rng(777)
    rows = []
    for n, d in SCENARIOS:
        fw = {p: [] for p in PROTOCOLS}
        deliv = {p: [] for p in PROTOCOLS}
        for seed in range(12):
            net = random_geometric_network(n, d, rng=rng)
            cs = lowest_id_clustering(net.graph)
            source = int(rng.choice(net.graph.nodes()))

            def record(p, result):
                fw[p].append(result.num_forward_nodes)
                deliv[p].append(len(result.received) / n)

            record("dynamic", broadcast_sd(cs, source).result)
            record("mpr", broadcast_mpr(net.graph, source))
            record("dominant-pruning",
                   broadcast_dominant_pruning(net.graph, source))
            record("forwarding-tree",
                   broadcast_forwarding_tree(cs, source)[0])
            record("rad", broadcast_rad(net.graph, source, rng=rng).result)
            record("passive", broadcast_passive_clustering(
                net.graph, source, rng=rng).result)
        rows.append((n, d,
                     {p: float(np.mean(v)) for p, v in fw.items()},
                     {p: float(np.mean(v)) for p, v in deliv.items()}))
    return rows


@pytest.mark.benchmark(group="ablation-sd-protocols")
def test_sd_protocol_zoo(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    header = f"{'n':>4} {'d':>4} " + "".join(f"{p:>17}" for p in PROTOCOLS)
    print(header + "   (forwards | delivery)")
    for n, d, fw, deliv in rows:
        cells = "".join(
            f"{fw[p]:>9.1f}|{deliv[p]:>6.2f} " for p in PROTOCOLS
        )
        print(f"{n:>4} {d:>4g} {cells}")
        # Every guaranteed protocol must actually deliver fully.
        for p in ("dynamic", "mpr", "dominant-pruning", "forwarding-tree",
                  "rad"):
            assert deliv[p] == pytest.approx(1.0), p
        # The cluster-based dynamic backbone stays competitive: within 2x of
        # the best guaranteed-delivery SD protocol on every scenario.
        guaranteed = [fw[p] for p in ("mpr", "dominant-pruning",
                                      "forwarding-tree", "rad")]
        assert fw["dynamic"] <= 2.0 * min(guaranteed)
        # Passive clustering pays for its savings with delivery (paper).
        if d <= 6:
            assert deliv["passive"] < 1.0
