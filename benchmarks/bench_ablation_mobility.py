"""Ablation (extension): static-backbone maintenance cost under mobility.

The paper's argument for the dynamic backbone is that "maintaining a static
backbone at all times for broadcasting is costly".  This bench drives a
network with a random walk at increasing speeds and measures how many
clusterheads would need to re-signal (coverage-set or selection change) per
tick — the cost that the dynamic backbone avoids entirely.
"""

import pytest

from repro.geometry.mobility import RandomWalk
from repro.graph.generators import random_geometric_network
from repro.maintenance.session import MobilitySession

SPEEDS = (0.5, 2.0, 8.0)
TICKS = 8


def measure():
    rows = []
    for speed in SPEEDS:
        resignal = 0.0
        turnover = 0.0
        links = 0.0
        trials = 4
        for seed in range(trials):
            net = random_geometric_network(50, 10.0, rng=seed * 31 + 7)
            session = MobilitySession(
                net, RandomWalk(speed=speed, area=net.area, rng=seed)
            )
            for report in session.run(TICKS):
                assert report.backbone_churn is not None
                resignal += len(report.backbone_churn.heads_with_new_selection)
                turnover += report.backbone_churn.gateway_turnover
                links += report.link_changes
        denom = trials * TICKS
        rows.append((speed, resignal / denom, turnover / denom, links / denom))
    return rows


@pytest.mark.benchmark(group="ablation-mobility")
def test_maintenance_cost_vs_speed(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'speed':>6} | {'heads re-signalling':>20} "
          f"{'gateway turnover':>17} {'link changes':>13}")
    for speed, resignal, turnover, links in rows:
        print(f"{speed:>6g} | {resignal:>20.2f} {turnover:>17.2f} "
              f"{links:>13.2f}")
    # Maintenance burden grows with node speed.
    assert rows[0][3] < rows[-1][3]          # link churn
    assert rows[0][1] <= rows[-1][1] + 0.5   # re-signalling heads
    # Even slow movement forces some re-signalling: the paper's point.
    assert rows[0][1] > 0.0
