"""Figure 7: average forward-node-set size — dynamic backbone vs MO_CDS.

Paper claim reproduced here: "The dynamic backbone algorithm shows much
better performance than the MO_CDS", with the advantage growing in the
dense (d=18) configuration.
"""

import pytest

from repro.workload.experiments import DYNAMIC_25, DYNAMIC_3, MO_CDS, run_fig7

from _bench_utils import record_tables


@pytest.mark.benchmark(group="fig7")
def test_fig7_forward_node_set(benchmark, env):
    tables = benchmark.pedantic(run_fig7, args=(env,), rounds=1, iterations=1)
    record_tables(benchmark, tables)
    for d, table in tables.items():
        dyn25 = table.get(DYNAMIC_25).as_dict()
        dyn3 = table.get(DYNAMIC_3).as_dict()
        mo = table.get(MO_CDS).as_dict()
        for n in dyn25:
            # Shape: the dynamic backbone never loses to MO_CDS.
            assert dyn25[n] <= mo[n] + 0.5, (d, n)
            # Policies track each other closely.
            assert dyn3[n] == pytest.approx(dyn25[n], rel=0.15, abs=2.0)
        if d >= 18 and max(dyn25) >= 60:
            # Dense networks: a clear win (paper's Figure 7(b)); require at
            # least ~15% fewer forwards at the largest sizes.
            n_max = max(dyn25)
            assert dyn25[n_max] < 0.85 * mo[n_max], (
                f"d={d}: dynamic {dyn25[n_max]:.1f} not clearly below "
                f"mo-cds {mo[n_max]:.1f}"
            )
