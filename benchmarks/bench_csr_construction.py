"""CSR pipeline throughput benchmark with a committed regression gate.

Runs the array-native per-trial hot path — :func:`unit_disk_csr`
construction, giant-component extraction, lowest-ID clustering, 2.5-hop
coverage and batched gateway selection — at a fixed size and degree, and
reports construction and whole-pipeline throughput in nodes/second.

Modes:

* default: measure and print (records a trajectory point unless
  ``--no-record``);
* ``--gate``: additionally fail (exit 1) when construction throughput
  drops below ``0.7x`` the latest committed ``BENCH_trials.json`` point
  with the same label — the CI regression gate for the CSR core;
* ``--update``: measure and (re)record the baseline point, for refreshing
  the committed baseline after an intentional perf change.
"""

from __future__ import annotations

import argparse
import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.backbone.gateway_selection import select_gateways_batch
from repro.cluster.lowest_id import lowest_id_rows
from repro.coverage.two_five_hop import two_five_hop_arrays
from repro.geometry.area import Area
from repro.geometry.disk import range_for_target_degree
from repro.geometry.placement import uniform_placement
from repro.graph.build import unit_disk_csr
from repro.io.results import append_perf_point, latest_perf_point

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_trials.json"

#: Fail the ``--gate`` run below this fraction of the committed throughput.
REGRESSION_FLOOR = 0.7


def run_bench(*, n: int = 5000, degree: float = 12.0, seed: int = 11,
              reps: int = 5) -> dict:
    """Best-of-``reps`` timings of each pipeline stage at size ``n``."""
    side = 100.0 * (n / 100.0) ** 0.5
    area = Area(side, side)
    radius = range_for_target_degree(n, degree, area)
    pts = uniform_placement(n, area, rng=np.random.default_rng(seed))

    build = cluster = coverage = select = float("inf")
    backbone = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        full = unit_disk_csr(pts, radius)
        t1 = time.perf_counter()
        component = full.subgraph_rows(full.giant_component_rows())
        head_row = lowest_id_rows(component)
        t2 = time.perf_counter()
        cov = two_five_hop_arrays(component, head_row)
        t3 = time.perf_counter()
        sel = select_gateways_batch(cov)
        t4 = time.perf_counter()
        build = min(build, t1 - t0)
        cluster = min(cluster, t2 - t1)
        coverage = min(coverage, t3 - t2)
        select = min(select, t4 - t3)
        backbone = int(sel.backbone_rows().shape[0])
    pipeline = build + cluster + coverage + select
    return {
        "label": f"csr-construction-n{n}",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "n": n,
        "degree": degree,
        "seed": seed,
        "edges": int(full.num_edges),
        "backbone": backbone,
        "build_seconds": round(build, 4),
        "pipeline_seconds": round(pipeline, 4),
        "build_nodes_per_sec": round(n / build),
        "pipeline_nodes_per_sec": round(n / pipeline),
    }


def check_gate(summary: dict, bench_file: Path) -> None:
    """Fail when construction throughput regressed past the floor."""
    previous = latest_perf_point(bench_file, summary["label"])
    if previous is None:
        return
    floor = REGRESSION_FLOOR * float(previous["build_nodes_per_sec"])
    assert summary["build_nodes_per_sec"] >= floor, (
        f"CSR construction regressed: {summary['build_nodes_per_sec']:.0f} "
        f"nodes/s < {floor:.0f} (70% of the committed "
        f"{previous['build_nodes_per_sec']:.0f} from "
        f"{previous.get('timestamp')})"
    )


def main(argv=None) -> int:
    """CLI entry point; returns a process exit status."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=5000)
    parser.add_argument("--degree", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument("--gate", action="store_true",
                        help="fail below 0.7x the committed throughput "
                             "(implies --no-record)")
    parser.add_argument("--update", action="store_true",
                        help="record a fresh baseline point")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--bench-file", type=Path, default=BENCH_FILE)
    args = parser.parse_args(argv)

    summary = run_bench(n=args.n, degree=args.degree, seed=args.seed,
                        reps=args.reps)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"CSR pipeline at n={summary['n']} d={summary['degree']} "
              f"({summary['edges']} edges, backbone {summary['backbone']})")
        print(f"  construction {summary['build_seconds']:>8.4f}s "
              f"({summary['build_nodes_per_sec']:,.0f} nodes/s)")
        print(f"  pipeline     {summary['pipeline_seconds']:>8.4f}s "
              f"({summary['pipeline_nodes_per_sec']:,.0f} nodes/s)")
    if args.gate:
        try:
            check_gate(summary, args.bench_file)
        except AssertionError as exc:
            print(f"FAIL: {exc}")
            return 1
        previous = latest_perf_point(args.bench_file, summary["label"])
        base = (f"{previous['build_nodes_per_sec']:,.0f} committed"
                if previous else "no committed baseline")
        print(f"OK: construction gate passed ({base})")
        return 0
    if args.update:
        length = append_perf_point(args.bench_file, summary)
        print(f"recorded trajectory point {length} in {args.bench_file}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
