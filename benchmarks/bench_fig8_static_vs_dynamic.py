"""Figure 8: forward-node-set sizes of the static vs dynamic backbones.

Paper claims reproduced here: "broadcasting in the dynamic backbone that
uses the pruning technique has less broadcast redundancy than that in the
static backbone", and "the difference between algorithms with the 3-hop
coverage set and the 2.5-hop coverage set is very small".
"""

import pytest

from repro.workload.experiments import (
    DYNAMIC_25,
    DYNAMIC_3,
    STATIC_25,
    STATIC_3,
    run_fig8,
)

from _bench_utils import record_tables


@pytest.mark.benchmark(group="fig8")
def test_fig8_static_vs_dynamic(benchmark, env):
    tables = benchmark.pedantic(run_fig8, args=(env,), rounds=1, iterations=1)
    record_tables(benchmark, tables)
    for d, table in tables.items():
        static25 = table.get(STATIC_25).as_dict()
        static3 = table.get(STATIC_3).as_dict()
        dyn25 = table.get(DYNAMIC_25).as_dict()
        dyn3 = table.get(DYNAMIC_3).as_dict()
        for n in static25:
            # Shape: dynamic <= static for both coverage policies.
            assert dyn25[n] <= static25[n] + 0.5, (d, n)
            assert dyn3[n] <= static3[n] + 0.5, (d, n)
            # Shape: policy choice barely matters.
            assert static3[n] == pytest.approx(static25[n], rel=0.10)
            assert dyn3[n] == pytest.approx(dyn25[n], rel=0.15, abs=2.0)
