"""Ablation (extension): border effects in the paper's environment.

The paper's confined 100×100 square truncates transmission disks at the
border, so the analytic range calibration undershoots the *measured* mean
degree; a torus topology has no borders and hits the target exactly.  This
bench quantifies the deviation and its knock-on effect on the figures'
primary metric (CDS size) — the main reason absolute numbers of any
reproduction can differ from the paper's by a few percent.
"""

import numpy as np
import pytest

from repro.backbone.static_backbone import build_static_backbone
from repro.cluster.lowest_id import lowest_id_clustering
from repro.graph.generators import random_geometric_network
from repro.graph.properties import degree_stats

SCENARIOS = [(60, 6.0), (60, 18.0), (100, 18.0)]


def measure():
    rng = np.random.default_rng(6)
    rows = []
    for n, d in SCENARIOS:
        deg = {"plane": [], "torus": []}
        cds = {"plane": [], "torus": []}
        for _ in range(12):
            for label, torus in (("plane", False), ("torus", True)):
                net = random_geometric_network(n, d, rng=rng, torus=torus)
                deg[label].append(degree_stats(net.graph).mean)
                cds[label].append(
                    build_static_backbone(
                        lowest_id_clustering(net.graph)
                    ).size
                )
        rows.append((
            n, d,
            {k: float(np.mean(v)) for k, v in deg.items()},
            {k: float(np.mean(v)) for k, v in cds.items()},
        ))
    return rows


@pytest.mark.benchmark(group="ablation-border")
def test_border_effects(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(f"{'n':>4} {'d':>4} | {'deg plane':>10} {'deg torus':>10} | "
          f"{'CDS plane':>10} {'CDS torus':>10}")
    for n, d, deg, cds in rows:
        print(f"{n:>4} {d:>4g} | {deg['plane']:>10.2f} {deg['torus']:>10.2f}"
              f" | {cds['plane']:>10.1f} {cds['torus']:>10.1f}")
        # Torus calibration is exact; connectivity conditioning can push the
        # measured mean slightly above the target in sparse settings.
        assert deg["torus"] == pytest.approx(d, rel=0.08)
        # Border truncation depresses the planar degree below the torus one.
        assert deg["plane"] < deg["torus"]
        # Measured finding — two border effects pull the CDS size in
        # opposite directions and which wins depends on (n, d):
        # * the torus's exact (higher) degree means fewer clusters
        #   (shrinks the CDS — dominates at n=60, d=18: 15.9 vs 20.0);
        # * the torus's smaller diameter packs more coverage targets into
        #   every head's 3-hop ball, inflating gateway selections (grows
        #   the CDS — dominates at d=6 and again at n=100, d=18).
        # The robust conclusion for reproducers: absolute CDS sizes carry
        # an O(10-25%) environment-geometry uncertainty; the *comparisons*
        # between algorithms (Figures 6-8) are unaffected because all
        # algorithms share each sample.
        assert cds["plane"] == pytest.approx(cds["torus"], rel=0.30)
